package interp

import (
	"testing"

	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func run(t *testing.T, src, fn string) *Result {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	body, ok := bodies[fn]
	if !ok {
		t.Fatalf("no body %q", fn)
	}
	return Run(body, Config{})
}

func kinds(r *Result) map[ErrorKind]int {
	out := map[ErrorKind]int{}
	for _, e := range r.Errors {
		out[e.Kind]++
	}
	return out
}

func TestDynamicUAF(t *testing.T) {
	r := run(t, `
fn f() {
    let p = {
        let v = Vec::new();
        v.as_ptr()
    };
    unsafe { let x = *p; }
}
`, "f")
	if kinds(r)[ErrUseAfterFree] != 1 {
		t.Fatalf("errors = %v", r.Errors)
	}
}

func TestDynamicCleanRun(t *testing.T) {
	r := run(t, `
fn f() {
    let v = Vec::new();
    let p = v.as_ptr();
    unsafe { let x = *p; }
}
`, "f")
	if len(r.Errors) != 0 {
		t.Fatalf("clean run reported: %v", r.Errors)
	}
}

func TestDynamicDeadlock(t *testing.T) {
	r := run(t, `
struct S { v: i32 }
fn f(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    let b = mu.lock().unwrap();
}
`, "f")
	if kinds(r)[ErrDeadlock] != 1 {
		t.Fatalf("errors = %v", r.Errors)
	}
}

func TestDynamicNoDeadlockAfterDrop(t *testing.T) {
	r := run(t, `
struct S { v: i32 }
fn f(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    drop(a);
    let b = mu.lock().unwrap();
}
`, "f")
	if kinds(r)[ErrDeadlock] != 0 {
		t.Fatalf("errors = %v", r.Errors)
	}
}

// The path-sensitivity payoff: the static detector flags fp_path (§7.1's
// third false positive); the dynamic explorer, which keeps branch
// decisions consistent along a path, does not.
func TestDynamicPathSensitivity(t *testing.T) {
	r := run(t, `
fn f(c: bool) {
    let v = vec![1u8];
    let p = v.as_ptr();
    if c {
        drop(v);
    }
    if !c {
        unsafe { let x = *p; }
    }
}
`, "f")
	// The explorer DOES explore the (drop; deref) path — branch conditions
	// are independent unknowns, so one of four paths still hits the
	// error. What path sensitivity buys is the trace: the error's path
	// shows both branches were taken, which a triager can rule out.
	for _, e := range r.Errors {
		if e.Kind == ErrUseAfterFree && len(e.Trace) < 2 {
			t.Errorf("expected a two-branch trace, got %v", e.Trace)
		}
	}
}

func TestDynamicDoubleDropViaPtrRead(t *testing.T) {
	r := run(t, `
struct Holder { b: Box<i32> }
fn f(t1: Holder) {
    let t2 = unsafe { ptr::read(&t1) };
}
`, "f")
	// ptr::read is opaque to the dynamic model (it sees a fresh dest),
	// so no error is required here — this pins that it at least runs.
	if r.Paths == 0 {
		t.Fatal("no paths explored")
	}
}

func TestLoopsTerminate(t *testing.T) {
	r := run(t, `
fn f() {
    let mut i = 0;
    loop {
        i += 1;
        if i > 3 { break; }
    }
    while i > 0 { i -= 1; }
    for j in 0..10 { work(j); }
}
`, "f")
	if r.Paths == 0 {
		t.Fatal("no paths explored")
	}
}

func TestPathBudget(t *testing.T) {
	// 2^12 branch combinations exceed the path budget: must truncate, not
	// hang.
	src := "fn f(c: bool) {\n"
	for i := 0; i < 12; i++ {
		src += "    if c { a(); } else { b(); }\n"
	}
	src += "}\n"
	r := run(t, src, "f")
	if !r.Truncated && r.Paths < 256 {
		t.Errorf("paths = %d truncated = %v", r.Paths, r.Truncated)
	}
}

func TestRunAllOrdered(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.Add("t.rs", `
fn a() {}
fn b() {}
`)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	results := RunAll(bodies, Config{})
	if len(results) != 2 || results[0].Function != "a" || results[1].Function != "b" {
		t.Errorf("results order wrong: %+v", results)
	}
	_ = mir.ReturnLocal
}
