// Package interp is a dynamic checker over MIR in the style of Miri (the
// paper's §2.4/§7 "dynamic detectors" discussion): it executes a function's
// MIR over an abstract memory, tracking storage liveness, ownership and
// lock state, and reports the runtime errors this exposes — use of dead
// storage (use-after-free), double drops, dropping uninitialized memory
// (invalid free), and re-acquiring a held lock (double-lock deadlock).
//
// Branch conditions are usually unknown statically, so the interpreter
// explores both SwitchInt outcomes with a bounded depth-first search: it is
// the "needs an input that triggers the bug" limitation of dynamic tools,
// mechanized. Every error carries the branch trace that reaches it.
package interp

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// ErrorKind classifies dynamic errors.
type ErrorKind string

// Dynamic error kinds.
const (
	ErrUseAfterFree ErrorKind = "use-after-free"
	ErrDoubleDrop   ErrorKind = "double-drop"
	ErrInvalidFree  ErrorKind = "invalid-free"
	ErrUninitRead   ErrorKind = "uninitialized-read"
	ErrDeadlock     ErrorKind = "deadlock"
)

// DynamicError is one error found along some execution path.
type DynamicError struct {
	Kind     ErrorKind
	Function string
	Span     source.Span
	Message  string
	// Trace is the sequence of branch decisions that reached the error,
	// as "bbN->bbM" steps.
	Trace []string
}

func (e DynamicError) String() string {
	return fmt.Sprintf("[%s] %s (in %s; path %s)", e.Kind, e.Message, e.Function, strings.Join(e.Trace, " "))
}

// cellState is the lifecycle state of a local's storage.
type cellState int

const (
	stateDead cellState = iota
	stateUninit
	stateInit
	stateMoved
)

// Config bounds the exploration.
type Config struct {
	MaxSteps     int // per-path statement budget (default 4096)
	MaxPaths     int // total explored paths (default 256)
	MaxCallDepth int // inlining depth for resolved calls (default 2)
}

// Result is the exploration outcome for one function.
type Result struct {
	Function  string
	Errors    []DynamicError
	Paths     int  // paths explored
	Truncated bool // hit a budget
}

// Run explores a body and returns the dynamic errors found.
func Run(body *mir.Body, cfg Config) *Result {
	return RunWith(body, cfg, nil)
}

// RunWith explores a body with access to other bodies for depth-limited
// call inlining: when a call resolves to a known body, the callee is
// explored with the caller's held-lock set translated through the
// receiver path, so caller-holds/callee-locks deadlocks surface
// dynamically too.
func RunWith(body *mir.Body, cfg Config, bodies map[string]*mir.Body) *Result {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 4096
	}
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 256
	}
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = 2
	}
	name := "?"
	if body.Func != nil {
		name = body.Func.Qualified
	}
	r := &Result{Function: name}
	ex := &explorer{body: body, cfg: cfg, res: r, bodies: bodies}

	init := newState(body)
	ex.explore(init, 0, nil, 0)
	dedupe(r)
	return r
}

type machineState struct {
	cells []cellState
	// pointees[l] = storage roots local l points into (dynamic points-to).
	// Roots at indices >= len(body.Locals) are pseudo heap roots created
	// by alloc(): heap memory has its own lifecycle (uninit until written,
	// dead after dealloc) independent of any stack temporary's storage.
	pointees []map[mir.LocalID]bool
	// guards[l] = lock identity held by local l (empty when none).
	guards []string
	// valueOf[l] = the local whose value l owns. Identity except for
	// ptr::read duplicates, which share their original's value root so
	// dropping both surfaces as a double drop (the §5.1 double free).
	valueOf []mir.LocalID
	// heldLocks is the multiset of lock identities currently held.
	heldLocks map[string]int
	steps     int
}

// newHeapRoot appends a fresh uninitialized pseudo root modeling one
// alloc() result and returns its id.
func (s *machineState) newHeapRoot() mir.LocalID {
	id := mir.LocalID(len(s.cells))
	s.cells = append(s.cells, stateUninit)
	s.pointees = append(s.pointees, nil)
	s.guards = append(s.guards, "")
	s.valueOf = append(s.valueOf, id)
	return id
}

func newState(body *mir.Body) *machineState {
	s := &machineState{
		cells:     make([]cellState, len(body.Locals)),
		pointees:  make([]map[mir.LocalID]bool, len(body.Locals)),
		guards:    make([]string, len(body.Locals)),
		valueOf:   make([]mir.LocalID, len(body.Locals)),
		heldLocks: map[string]int{},
	}
	for i := range s.valueOf {
		s.valueOf[i] = mir.LocalID(i)
	}
	// Return place and arguments start live and initialized.
	s.cells[mir.ReturnLocal] = stateUninit
	for i := 0; i < body.ArgCount; i++ {
		s.cells[i+1] = stateInit
	}
	// Statics (allocated as extra locals) are always live.
	for _, l := range body.Locals {
		if strings.HasPrefix(l.Name, "static ") {
			s.cells[l.ID] = stateInit
		}
	}
	return s
}

func (s *machineState) clone() *machineState {
	out := &machineState{
		cells:     append([]cellState(nil), s.cells...),
		pointees:  make([]map[mir.LocalID]bool, len(s.pointees)),
		guards:    append([]string(nil), s.guards...),
		valueOf:   append([]mir.LocalID(nil), s.valueOf...),
		heldLocks: map[string]int{},
		steps:     s.steps,
	}
	for i, m := range s.pointees {
		if m != nil {
			out.pointees[i] = make(map[mir.LocalID]bool, len(m))
			for k, v := range m {
				out.pointees[i][k] = v
			}
		}
	}
	for k, v := range s.heldLocks {
		out.heldLocks[k] = v
	}
	return out
}

type explorer struct {
	body   *mir.Body
	cfg    Config
	res    *Result
	bodies map[string]*mir.Body
	// callDepth tracks inlining depth; inheritedLocks are the caller's
	// held lock ids translated into this frame's namespace.
	callDepth      int
	inheritedLocks map[string]bool
}

func (ex *explorer) emit(kind ErrorKind, sp source.Span, trace []string, format string, args ...any) {
	ex.res.Errors = append(ex.res.Errors, DynamicError{
		Kind:     kind,
		Function: ex.res.Function,
		Span:     sp,
		Message:  fmt.Sprintf(format, args...),
		Trace:    append([]string(nil), trace...),
	})
}

// explore runs one path from the given block; at SwitchInt it forks.
func (ex *explorer) explore(s *machineState, blk mir.BlockID, trace []string, depth int) {
	if ex.res.Paths >= ex.cfg.MaxPaths {
		ex.res.Truncated = true
		return
	}
	body := ex.body
	for {
		if s.steps += 1; s.steps > ex.cfg.MaxSteps {
			ex.res.Truncated = true
			return
		}
		if int(blk) >= len(body.Blocks) {
			return
		}
		b := body.Blocks[blk]
		for _, st := range b.Stmts {
			ex.step(s, st, trace)
		}
		term := b.Term
		if term == nil {
			ex.res.Paths++
			return
		}
		switch term := term.(type) {
		case mir.Goto:
			blk = term.Target
		case mir.Return, mir.Unreachable:
			ex.res.Paths++
			return
		case mir.Drop:
			ex.dynDrop(s, term.Place, term.Span, trace)
			blk = term.Target
		case mir.Call:
			ex.dynCall(s, term, trace)
			blk = term.Target
		case mir.SwitchInt:
			// Fork on every successor (deduplicated), bounded by depth.
			succs := term.Successors()
			uniq := succs[:0]
			seen := map[mir.BlockID]bool{}
			for _, t := range succs {
				if !seen[t] {
					seen[t] = true
					uniq = append(uniq, t)
				}
			}
			if depth > 24 || len(uniq) == 1 {
				// Too deep (likely a loop): follow the last successor,
				// which for loop headers is the exit edge.
				blk = uniq[len(uniq)-1]
				continue
			}
			for _, t := range uniq {
				ex.explore(s.clone(), t, append(trace, fmt.Sprintf("bb%d->bb%d", blk, t)), depth+1)
			}
			return
		default:
			ex.res.Paths++
			return
		}
	}
}

func (ex *explorer) step(s *machineState, st mir.Statement, trace []string) {
	switch st := st.(type) {
	case mir.StorageLive:
		s.cells[st.Local] = stateUninit
	case mir.StorageDead:
		s.cells[st.Local] = stateDead
		ex.releaseGuard(s, st.Local)
	case mir.Assign:
		ex.readRvalue(s, st.Rvalue, st.Span, trace)
		ex.writePlace(s, st.Place, st.Span, trace, assignDropsGlue(ex.body, st))
		ex.flowAssign(s, st)
	}
}

// assignDropsGlue reports whether the assigned value's type has drop
// glue, so overwriting a garbage previous value through a raw pointer
// actually runs a destructor (the Figure 6 invalid free). Mirrors the
// static dfree detector's typeNeedsDrop so the two oracles agree.
func assignDropsGlue(body *mir.Body, as mir.Assign) bool {
	var ty types.Type
	switch rv := as.Rvalue.(type) {
	case mir.Use:
		switch op := rv.X.(type) {
		case mir.Copy:
			ty = body.Local(op.Place.Local).Ty
		case mir.Move:
			ty = body.Local(op.Place.Local).Ty
		case mir.Const:
			ty = op.Ty
		}
	case mir.Aggregate:
		ty = types.NamedOf(rv.Name)
	default:
		return false
	}
	return typeNeedsDrop(ty)
}

func typeNeedsDrop(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		switch t.Name {
		case "PhantomData", "Ordering":
			return false
		}
		return true
	case *types.Tuple:
		for _, e := range t.Elems {
			if typeNeedsDrop(e) {
				return true
			}
		}
	}
	return false
}

// localName renders a local or pseudo heap root for messages.
func (ex *explorer) localName(l mir.LocalID) string {
	if int(l) < len(ex.body.Locals) {
		return ex.body.Local(l).String()
	}
	return fmt.Sprintf("heap allocation #%d", int(l)-len(ex.body.Locals))
}

// readRvalue checks every read the rvalue performs.
func (ex *explorer) readRvalue(s *machineState, rv mir.Rvalue, sp source.Span, trace []string) {
	read := func(op mir.Operand) {
		pl, ok := mir.OperandPlace(op)
		if !ok {
			return
		}
		ex.readPlace(s, pl, sp, trace)
		if mv, isMove := op.(mir.Move); isMove && mv.Place.IsLocal() {
			s.cells[mv.Place.Local] = stateMoved
			// Guard transfer (if any) is flowAssign's job: the guard
			// moves with the value rather than being released.
		}
	}
	switch rv := rv.(type) {
	case mir.Use:
		read(rv.X)
	case mir.Cast:
		read(rv.X)
	case mir.BinaryOp:
		read(rv.L)
		read(rv.R)
	case mir.UnaryOp:
		read(rv.X)
	case mir.Aggregate:
		for _, op := range rv.Ops {
			read(op)
		}
	case mir.Discriminant:
		ex.readPlace(s, rv.Place, sp, trace)
	case mir.Ref, mir.AddrOf:
		// Taking an address reads nothing.
	}
}

// readPlace validates a read access path.
func (ex *explorer) readPlace(s *machineState, p mir.Place, sp source.Span, trace []string) {
	if !p.HasDeref() {
		if p.IsLocal() && s.cells[p.Local] == stateDead {
			// Reading a dead local directly: lowering artifacts make this
			// noisy; only pointer-mediated accesses are reported.
			return
		}
		return
	}
	// A deref: every pointee must be live.
	for root := range s.pointees[p.Local] {
		if root == p.Local {
			continue
		}
		switch s.cells[root] {
		case stateDead, stateMoved:
			ex.emit(ErrUseAfterFree, sp, trace,
				"pointer %s dereferences storage of %s after its lifetime ended",
				ex.body.Local(p.Local), ex.localName(root))
		case stateUninit:
			ex.emit(ErrUninitRead, sp, trace,
				"pointer %s reads uninitialized storage of %s",
				ex.body.Local(p.Local), ex.localName(root))
		}
	}
}

// writePlace validates a write access path and updates init state.
// dropsGlue reports whether the assigned value's type has drop glue (so
// overwriting uninitialized memory frees garbage — the Figure 6 shape).
func (ex *explorer) writePlace(s *machineState, p mir.Place, sp source.Span, trace []string, dropsGlue bool) {
	if p.IsLocal() {
		if s.cells[p.Local] == stateDead {
			s.cells[p.Local] = stateInit // defensive: lowering artifact
			return
		}
		s.cells[p.Local] = stateInit
		return
	}
	if p.HasDeref() {
		for root := range s.pointees[p.Local] {
			if root == p.Local {
				continue
			}
			if s.cells[root] == stateDead || s.cells[root] == stateMoved {
				ex.emit(ErrUseAfterFree, sp, trace,
					"pointer %s writes storage of %s after its lifetime ended",
					ex.body.Local(p.Local), ex.localName(root))
			}
			// Writing through a pointer to uninitialized memory with a
			// plain assignment drops the previous (garbage) value when the
			// written type has drop glue: the Figure 6 invalid free.
			if s.cells[root] == stateUninit && rootIsRawAlloc(ex.body, p.Local) {
				if dropsGlue {
					ex.emit(ErrInvalidFree, sp, trace,
						"assignment through %s drops an uninitialized previous value",
						ex.body.Local(p.Local))
				}
				s.cells[root] = stateInit
			}
		}
	}
}

func rootIsRawAlloc(body *mir.Body, l mir.LocalID) bool {
	_, isRaw := body.Local(l).Ty.(*types.RawPtr)
	return isRaw
}

// flowAssign updates dynamic points-to and guard transfer.
func (ex *explorer) flowAssign(s *machineState, st mir.Assign) {
	if !st.Place.IsLocal() {
		return
	}
	dest := st.Place.Local
	s.valueOf[dest] = dest // fresh value unless a move transfers an alias below
	setPointees := func(roots map[mir.LocalID]bool) {
		s.pointees[dest] = roots
	}
	switch rv := st.Rvalue.(type) {
	case mir.Ref:
		setPointees(ex.rootsOf(s, rv.Place))
	case mir.AddrOf:
		setPointees(ex.rootsOf(s, rv.Place))
	case mir.Use:
		if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
			setPointees(copySet(s.pointees[pl.Local]))
			if g := s.guards[pl.Local]; g != "" {
				s.guards[dest] = g
				s.guards[pl.Local] = ""
			}
			// A move of a ptr::read duplicate carries the shared value
			// root along; plain moves keep identity (drop elaboration
			// already elides the source's drop).
			if mir.IsMove(rv.X) && s.valueOf[pl.Local] != pl.Local {
				s.valueOf[dest] = s.valueOf[pl.Local]
			}
			return
		}
		setPointees(nil)
	case mir.Cast:
		if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
			setPointees(copySet(s.pointees[pl.Local]))
			return
		}
		setPointees(nil)
	default:
		setPointees(nil)
	}
}

func (ex *explorer) rootsOf(s *machineState, p mir.Place) map[mir.LocalID]bool {
	if !p.HasDeref() {
		return map[mir.LocalID]bool{p.Local: true}
	}
	return copySet(s.pointees[p.Local])
}

func copySet(m map[mir.LocalID]bool) map[mir.LocalID]bool {
	if m == nil {
		return nil
	}
	out := make(map[mir.LocalID]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// dynDrop executes a Drop terminator.
func (ex *explorer) dynDrop(s *machineState, p mir.Place, sp source.Span, trace []string) {
	if !p.IsLocal() {
		return
	}
	l := p.Local
	if root := s.valueOf[l]; root != l {
		// l holds a ptr::read duplicate: dropping it frees the shared
		// value, so the double-drop check runs against the value root.
		switch s.cells[root] {
		case stateMoved, stateDead:
			ex.emit(ErrDoubleDrop, sp, trace,
				"%s, a ptr::read duplicate of %s, dropped after that value was already freed (double drop)",
				ex.body.Local(l), ex.localName(root))
		default:
			s.cells[root] = stateMoved
		}
		if s.cells[l] == stateInit {
			s.cells[l] = stateMoved
		}
		ex.releaseGuard(s, l)
		return
	}
	switch s.cells[l] {
	case stateDead:
		ex.emit(ErrDoubleDrop, sp, trace, "%s dropped after its storage already ended", ex.body.Local(l))
	case stateMoved:
		ex.emit(ErrDoubleDrop, sp, trace, "%s dropped after being moved out (double drop)", ex.body.Local(l))
	case stateUninit:
		// Dropping never-initialized storage: invalid free when the type
		// has drop glue. Arguments start initialized so this is rare.
		ex.emit(ErrInvalidFree, sp, trace, "%s dropped while uninitialized", ex.body.Local(l))
	case stateInit:
		s.cells[l] = stateMoved // value gone; storage stays until StorageDead
	}
	ex.releaseGuard(s, l)
}

// dynCall models intrinsic calls.
func (ex *explorer) dynCall(s *machineState, c mir.Call, trace []string) {
	forwarding := c.Intrinsic == mir.IntrinsicUnwrap ||
		c.Intrinsic == mir.IntrinsicTryLock ||
		c.Intrinsic == mir.IntrinsicCondvarWait
	// Reads of arguments. A guard moved into an opaque callee is dropped
	// there (released); forwarding intrinsics transfer it to the dest
	// below instead.
	for _, a := range c.Args {
		if pl, ok := mir.OperandPlace(a); ok {
			ex.readPlace(s, pl, c.Span, trace)
			if mir.IsMove(a) && pl.IsLocal() {
				s.cells[pl.Local] = stateMoved
				if !forwarding {
					ex.transferGuardOut(s, pl.Local)
				}
			}
		}
	}
	if c.Dest.IsLocal() {
		s.cells[c.Dest.Local] = stateInit
		s.pointees[c.Dest.Local] = nil
		s.valueOf[c.Dest.Local] = c.Dest.Local
	}
	switch c.Intrinsic {
	case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
		if c.RecvPath == "" {
			return
		}
		if s.heldLocks[c.RecvPath] > 0 || ex.inheritedLocks[c.RecvPath] {
			ex.emit(ErrDeadlock, c.Span, trace,
				"acquiring %q while already held on this thread (double lock)", c.RecvPath)
			return
		}
		s.heldLocks[c.RecvPath]++
		if c.Dest.IsLocal() {
			s.guards[c.Dest.Local] = c.RecvPath
		}
	case mir.IntrinsicUnwrap, mir.IntrinsicTryLock:
		// Transfer the guard from arg0 to dest.
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				if g := s.guards[pl.Local]; g != "" {
					s.guards[pl.Local] = ""
					if c.Dest.IsLocal() {
						s.guards[c.Dest.Local] = g
					}
				}
				// Unwrap forwards aliases too.
				if c.Dest.IsLocal() {
					s.pointees[c.Dest.Local] = copySet(s.pointees[pl.Local])
				}
			}
		}
	case mir.IntrinsicCondvarWait:
		// Releases and reacquires: net effect transfers the guard.
		if len(c.Args) > 1 {
			if pl, ok := mir.OperandPlace(c.Args[1]); ok && pl.IsLocal() {
				if g := s.guards[pl.Local]; g != "" {
					s.guards[pl.Local] = ""
					if c.Dest.IsLocal() {
						s.guards[c.Dest.Local] = g
					}
				}
			}
		}
	case mir.IntrinsicAlloc:
		// Fresh uninitialized memory: a pseudo heap root with its own
		// lifecycle — uninit until an initializing write, unaffected by
		// the StorageDead of whatever stack temporary held the pointer.
		if c.Dest.IsLocal() {
			root := s.newHeapRoot()
			s.pointees[c.Dest.Local] = map[mir.LocalID]bool{root: true}
			s.cells[c.Dest.Local] = stateInit
		}
	case mir.IntrinsicPtrWrite:
		// ptr::write(p, v) initializes p's pointee without dropping the
		// previous value: every pointee root becomes initialized.
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				for root := range s.pointees[pl.Local] {
					if root == pl.Local {
						continue
					}
					if s.cells[root] == stateUninit || s.cells[root] == stateMoved {
						s.cells[root] = stateInit
					}
				}
			}
		}
	case mir.IntrinsicPtrRead:
		// ptr::read(p) reads through the pointer: uninitialized or dead
		// pointees surface here like any other dereference.
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				for root := range s.pointees[pl.Local] {
					if root == pl.Local {
						continue
					}
					switch s.cells[root] {
					case stateUninit:
						ex.emit(ErrUninitRead, c.Span, trace,
							"ptr::read through %s of uninitialized storage of %s",
							ex.localName(pl.Local), ex.localName(root))
					case stateDead:
						ex.emit(ErrUseAfterFree, c.Span, trace,
							"ptr::read through %s of storage of %s after its lifetime ended",
							ex.localName(pl.Local), ex.localName(root))
					}
				}
				// The result duplicates ownership of the pointee: record a
				// shared value root so dropping both copies is a double
				// drop. Only stack values participate — heap pseudo roots
				// are plain buffers here — and only an unambiguous single
				// root keeps the model deterministic.
				if c.Dest.IsLocal() {
					dup := mir.LocalID(-1)
					n := 0
					for root := range s.pointees[pl.Local] {
						if root != pl.Local && int(root) < len(ex.body.Locals) {
							n++
							if dup < 0 || root < dup {
								dup = root
							}
						}
					}
					if n == 1 {
						s.valueOf[c.Dest.Local] = s.valueOf[dup]
					}
				}
			}
		}
	case mir.IntrinsicDealloc:
		// dealloc/free ends the heap allocation's lifetime; later reads
		// through any alias are use-after-free. Only pseudo heap roots
		// die — freeing a stack pointer is a different bug class.
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				for root := range s.pointees[pl.Local] {
					if int(root) >= len(ex.body.Locals) {
						s.cells[root] = stateDead
					}
				}
			}
		}
	case mir.IntrinsicForget:
		// Already handled by the move of the argument.
	case mir.IntrinsicNone:
		ex.inlineCall(s, c, trace)
	}
}

// inlineCall explores a resolved callee body with the caller's held locks
// translated through the call's receiver path, surfacing
// caller-holds/callee-locks deadlocks dynamically.
func (ex *explorer) inlineCall(s *machineState, c mir.Call, trace []string) {
	if ex.bodies == nil || ex.callDepth >= ex.cfg.MaxCallDepth {
		return
	}
	calleeName := ""
	if c.Def != nil {
		calleeName = c.Def.Qualified
	} else {
		calleeName = c.Callee
	}
	callee, ok := ex.bodies[calleeName]
	if !ok || callee == ex.body {
		return
	}
	// Translate held lock identities into the callee's namespace.
	inherited := map[string]bool{}
	addTranslated := func(h string) {
		switch {
		case strings.HasPrefix(h, "static "):
			inherited[h] = true
		case c.RecvPath != "" && h == c.RecvPath:
			inherited["self"] = true
		case c.RecvPath != "" && strings.HasPrefix(h, c.RecvPath+"."):
			inherited["self."+h[len(c.RecvPath)+1:]] = true
		}
	}
	for h, n := range s.heldLocks {
		if n > 0 {
			addTranslated(h)
		}
	}
	for h := range ex.inheritedLocks {
		// Already in this frame's namespace: re-translate relative to the
		// receiver of the nested call.
		addTranslated(h)
	}
	if len(inherited) == 0 {
		return // no lock context to propagate: the callee is covered by its own root exploration
	}
	sub := &explorer{
		body:           callee,
		cfg:            ex.cfg,
		res:            ex.res, // findings accumulate on the root result
		bodies:         ex.bodies,
		callDepth:      ex.callDepth + 1,
		inheritedLocks: inherited,
	}
	sub.explore(newState(callee), 0, append(trace, "call "+calleeName), 0)
}

// releaseGuard releases the lock a local's guard holds, if any.
func (ex *explorer) releaseGuard(s *machineState, l mir.LocalID) {
	if g := s.guards[l]; g != "" {
		if s.heldLocks[g] > 0 {
			s.heldLocks[g]--
		}
		s.guards[l] = ""
	}
}

// transferGuardOut drops guard tracking when the holder is consumed by a
// move into an opaque sink (the value's new owner releases it eventually;
// we conservatively release now to avoid false deadlocks).
func (ex *explorer) transferGuardOut(s *machineState, l mir.LocalID) {
	ex.releaseGuard(s, l)
}

// dedupe removes duplicate errors (same kind+span) found on different
// paths, keeping the shortest trace.
func dedupe(r *Result) {
	best := map[string]DynamicError{}
	for _, e := range r.Errors {
		key := string(e.Kind) + "@" + fmt.Sprint(e.Span.Start)
		if prev, ok := best[key]; !ok || len(e.Trace) < len(prev.Trace) {
			best[key] = e
		}
	}
	out := make([]DynamicError, 0, len(best))
	for _, e := range best {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Span.Start != out[j].Span.Start {
			return out[i].Span.Start < out[j].Span.Start
		}
		return out[i].Kind < out[j].Kind
	})
	r.Errors = out
}

// RunAll explores every body (with cross-body call inlining) and merges
// the results.
func RunAll(bodies map[string]*mir.Body, cfg Config) []*Result {
	names := make([]string, 0, len(bodies))
	for n := range bodies {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*Result
	for _, n := range names {
		out = append(out, RunWith(bodies[n], cfg, bodies))
	}
	return out
}
