package advisor

import (
	"strings"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
	"rustprobe/internal/unsafety"
)

func analyze(t *testing.T, src string) (*unsafety.Report, []detect.Finding, *source.FileSet) {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	var findings []detect.Finding
	findings = append(findings, uaf.New().Run(ctx)...)
	findings = append(findings, doublelock.New().Run(ctx)...)
	return unsafety.Scan(prog), findings, fset
}

const mixedSrc = `
struct S { v: i32 }

fn double_lock(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    let b = mu.lock().unwrap();
}

struct Buf { data: Vec<u8>, len: usize }
impl Buf {
    fn get_fast(&self, i: usize) -> u8 {
        unsafe { *self.data.get_unchecked(i) }
    }
    pub unsafe fn from_parts(data: Vec<u8>) -> Buf {
        Buf { data: data, len: 0 }
    }
}

pub unsafe fn pointless() {
    let x = 1 + 2;
    report(x);
}
`

func TestAdvicePriorities(t *testing.T) {
	rep, findings, fset := analyze(t, mixedSrc)
	advice := Advise(rep, findings)
	if len(advice) < 4 {
		t.Fatalf("advice = %d items: %+v", len(advice), advice)
	}
	// Findings first.
	if advice[0].Priority != PriorityFix {
		t.Errorf("first advice = %v, want FIX", advice[0].Priority)
	}
	if !strings.Contains(advice[0].Text, "double lock") {
		t.Errorf("fix text = %q", advice[0].Text)
	}
	// Priorities are monotone.
	for i := 1; i < len(advice); i++ {
		if advice[i].Priority < advice[i-1].Priority {
			t.Errorf("advice not sorted by priority at %d", i)
		}
	}
	// Sanity: positions resolve.
	for _, a := range advice {
		if !strings.Contains(a.Format(fset), "test.rs") {
			t.Errorf("format missing position: %s", a.Format(fset))
		}
	}
}

func TestAdviceKinds(t *testing.T) {
	rep, findings, _ := analyze(t, mixedSrc)
	advice := Advise(rep, findings)
	var sawUnchecked, sawCtor, sawRemovable bool
	for _, a := range advice {
		switch {
		case strings.Contains(a.Text, "no explicit precondition check"):
			sawUnchecked = true
			if a.Suggestion != "S3" {
				t.Errorf("unchecked advice suggestion = %q", a.Suggestion)
			}
		case strings.Contains(a.Text, "constructor-labelling"):
			sawCtor = true
		case strings.Contains(a.Text, "remove it or shrink"):
			sawRemovable = true
		}
	}
	if !sawUnchecked || !sawCtor || !sawRemovable {
		t.Errorf("missing advice kinds: unchecked=%v ctor=%v removable=%v", sawUnchecked, sawCtor, sawRemovable)
	}
}

func TestSummary(t *testing.T) {
	rep, findings, _ := analyze(t, mixedSrc)
	advice := Advise(rep, findings)
	s := Summary(advice)
	if !strings.Contains(s, "to fix") || !strings.Contains(s, "S3") {
		t.Errorf("summary = %q", s)
	}
}

func TestFixAdviceCoversAllKinds(t *testing.T) {
	kinds := []detect.Kind{
		detect.KindDoubleLock, detect.KindLockOrder, detect.KindUseAfterFree,
		detect.KindInvalidFree, detect.KindDoubleFree, detect.KindUninitRead,
		detect.KindInteriorMut,
	}
	for _, k := range kinds {
		text, _ := fixAdvice(detect.Finding{Kind: k})
		if text == "" || text == "review this finding" {
			t.Errorf("kind %s has no tailored advice", k)
		}
	}
}
