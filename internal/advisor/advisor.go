// Package advisor turns analysis results into the actionable guidance of
// the paper's §8 discussion: when unsafe is justified, how to encapsulate
// it properly, and how to convert it to safe code. It consumes the §4
// scanner's report and the detectors' findings and emits prioritized
// advice items, each tied to the paper suggestion it implements.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/detect"
	"rustprobe/internal/source"
	"rustprobe/internal/study"
	"rustprobe/internal/unsafety"
)

// Priority ranks advice.
type Priority int

// Priorities, high to low.
const (
	PriorityFix     Priority = iota // confirmed bug: fix now
	PriorityAudit                   // likely unsound: audit
	PriorityCleanup                 // hygiene: improves encapsulation
)

func (p Priority) String() string {
	switch p {
	case PriorityFix:
		return "FIX"
	case PriorityAudit:
		return "AUDIT"
	default:
		return "CLEANUP"
	}
}

// Advice is one recommendation.
type Advice struct {
	Priority   Priority
	Span       source.Span
	Subject    string // function or type the advice targets
	Text       string
	Suggestion string // paper suggestion id ("S1".."S8"), if any
}

// Format renders the advice with a resolved position.
func (a Advice) Format(fset *source.FileSet) string {
	pos := fset.Position(a.Span.Start)
	tag := ""
	if a.Suggestion != "" {
		tag = fmt.Sprintf(" [paper %s]", a.Suggestion)
	}
	return fmt.Sprintf("%s: %s: %s: %s%s", pos, a.Priority, a.Subject, a.Text, tag)
}

// Advise produces prioritized advice from a scan report and findings.
func Advise(rep *unsafety.Report, findings []detect.Finding) []Advice {
	var out []Advice

	// 1. Confirmed findings become FIX items with the fix idiom the
	// paper's fix-strategy study (§5.2, §6.1) associates with the class.
	for _, f := range findings {
		text, sug := fixAdvice(f)
		out = append(out, Advice{
			Priority:   PriorityFix,
			Span:       f.Span,
			Subject:    f.Function,
			Text:       text,
			Suggestion: sug,
		})
	}

	// 2. Unchecked interior-unsafe functions: either add the check or
	// mark the function unsafe (Suggestion 3).
	for _, fn := range rep.UncheckedInterior() {
		out = append(out, Advice{
			Priority: PriorityAudit,
			Span:     fn.Span,
			Subject:  fn.Name,
			Text: "interior-unsafe function has no explicit precondition check; " +
				"add a check before the unsafe region or mark the function `unsafe` " +
				"so callers own the obligation",
			Suggestion: "S3",
		})
	}

	// 3. Removable unsafe markers: keep the constructor-labelling idiom
	// (it is the paper's §4.1 good practice), drop the rest (Suggestion 1).
	for _, u := range rep.Removable() {
		if u.CtorLabel {
			out = append(out, Advice{
				Priority: PriorityCleanup,
				Span:     u.Span,
				Subject:  u.Function,
				Text: "constructor-labelling idiom recognized: the unsafe marker encodes an " +
					"invariant later methods rely on — keep it, and document the invariant",
				Suggestion: "S1",
			})
			continue
		}
		out = append(out, Advice{
			Priority: PriorityCleanup,
			Span:     u.Span,
			Subject:  u.Function,
			Text: "no operation in this unsafe marker requires unsafe; remove it or shrink " +
				"it to the smallest region that does",
			Suggestion: "S1",
		})
	}

	// 4. Multi-region interior-unsafe functions: consolidate (Suggestion 2).
	for _, fn := range rep.InteriorFns {
		if fn.UnsafeRegions >= 3 {
			out = append(out, Advice{
				Priority: PriorityCleanup,
				Span:     fn.Span,
				Subject:  fn.Name,
				Text: fmt.Sprintf("%d separate unsafe regions in one function; hoist the shared "+
					"precondition into one checked interior-unsafe helper", fn.UnsafeRegions),
				Suggestion: "S2",
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		return out[i].Span.Start < out[j].Span.Start
	})
	return out
}

// fixAdvice maps a finding kind to the fix idiom the studied patches used.
func fixAdvice(f detect.Finding) (string, string) {
	switch f.Kind {
	case detect.KindDoubleLock:
		return "double lock: end the first critical section before re-acquiring — bind the " +
			"guard-using expression to a `let` (the guard then dies at the statement end) or " +
			"call drop(guard) explicitly (21 of the paper's 59 blocking bugs were fixed by " +
			"adjusting guard lifetime)", "S7"
	case detect.KindLockOrder:
		return "conflicting lock order: pick one global acquisition order and rewrite the " +
			"minority path (7 of the paper's Mutex bugs)", "S6"
	case detect.KindUseAfterFree:
		return "use-after-free: extend the owner's lifetime past the last pointer use — bind " +
			"the temporary to a named local that outlives the dereference (the paper's " +
			"'adjust lifetime' strategy, 22 of 70 memory fixes)", "S5"
	case detect.KindInvalidFree:
		return "invalid free: initialize through ptr::write instead of assignment so the " +
			"garbage previous value is not dropped (the Figure 6 fix)", ""
	case detect.KindDoubleFree:
		return "double free: transfer ownership with a move (t2 = t1) instead of ptr::read, " +
			"or mem::forget the original", ""
	case detect.KindUninitRead:
		return "uninitialized read: zero-fill or ptr::write the allocation before the first read", ""
	case detect.KindInteriorMut:
		if strings.Contains(f.Message, "check-then-act") {
			return "non-atomic check-then-act: fold the load/branch/store into one " +
				"compare_and_swap (the Figure 9 fix)", "S8"
		}
		return "unsynchronized interior mutability on a shared type: guard the mutation with " +
			"a self-rooted lock, or take &mut self so the compiler enforces exclusivity", "S8"
	default:
		return "review this finding", ""
	}
}

// Summary counts advice by priority and cites the catalog entries used.
func Summary(advice []Advice) string {
	counts := map[Priority]int{}
	sugs := map[string]bool{}
	for _, a := range advice {
		counts[a.Priority]++
		if a.Suggestion != "" {
			sugs[a.Suggestion] = true
		}
	}
	var ids []string
	for id := range sugs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var cited []string
	for _, id := range ids {
		if in := study.InsightByID(id); in != nil {
			cited = append(cited, fmt.Sprintf("%s (§%s)", id, in.Section))
		}
	}
	return fmt.Sprintf("%d to fix, %d to audit, %d cleanups; paper suggestions applied: %s",
		counts[PriorityFix], counts[PriorityAudit], counts[PriorityCleanup],
		strings.Join(cited, ", "))
}
