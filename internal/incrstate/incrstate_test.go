package incrstate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleState() *State {
	return &State{
		Version:    "v1:test",
		Files:      ContentHashes(map[string]string{"a.rs": "fn main() {}"}),
		Interfaces: map[string]string{"a.rs": "ih"},
		FnBodies:   map[string]string{"main": "bh"},
		FnPos:      map[string]string{"main": "a.rs:0:1:1"},
		Findings: []Finding{{
			Kind: "use_after_free", Severity: "warning", Function: "main",
			File: "a.rs", Line: 3, Column: 5, Message: "m", Notes: []string{"n"},
		}},
		Local: map[string][]Finding{"main": {{Kind: "use_after_free", Function: "main", File: "a.rs", Line: 3, Column: 5}}},
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	st := sampleState()
	if err := Save(path, st); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got := Load(path, "v1:test")
	if got == nil {
		t.Fatal("Load returned nil for a state it just saved")
	}
	a, _ := json.Marshal(st)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("roundtrip mismatch:\nsaved  %s\nloaded %s", a, b)
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Save(path, sampleState()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if got := Load(path, "v2:other"); got != nil {
		t.Fatalf("Load accepted a state written for another version: %+v", got)
	}
}

func TestLoadRejectsCorruptAndMissing(t *testing.T) {
	dir := t.TempDir()
	if got := Load(filepath.Join(dir, "absent.json"), "v1:test"); got != nil {
		t.Fatalf("Load of missing file returned %+v, want nil", got)
	}
	path := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := Load(path, "v1:test"); got != nil {
		t.Fatalf("Load of corrupt file returned %+v, want nil", got)
	}
}

// The version-field regression this package exists to pin: a state file
// written before fn_pos existed (correct version string, no fn_pos key)
// must be discarded so the caller runs a full round — replaying its
// findings after a body edit could report stale positions.
func TestDecodeRejectsLegacyStateWithoutFnPos(t *testing.T) {
	st := sampleState()
	st.FnPos = nil
	raw, err := json.Marshal(struct {
		Version    string               `json:"version"`
		Files      map[string]string    `json:"files"`
		Interfaces map[string]string    `json:"interfaces"`
		FnBodies   map[string]string    `json:"fn_bodies"`
		Findings   []Finding            `json:"findings"`
		Local      map[string][]Finding `json:"local_findings"`
	}{st.Version, st.Files, st.Interfaces, st.FnBodies, st.Findings, st.Local})
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(raw, "v1:test"); got != nil {
		t.Fatalf("Decode accepted a legacy fn_pos-less state: %+v", got)
	}
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := Load(path, "v1:test"); got != nil {
		t.Fatal("Load accepted a legacy fn_pos-less state file")
	}
}

func TestEncodeDecode(t *testing.T) {
	st := sampleState()
	data, err := Encode(st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Decode(data, "v1:test"); got == nil {
		t.Fatal("Decode rejected bytes Encode produced")
	}
	if got := Decode(data, "other"); got != nil {
		t.Fatal("Decode accepted a mismatched version")
	}
}

func TestUnchangedFrom(t *testing.T) {
	files := map[string]string{"a.rs": "fn main() {}", "b.rs": "fn f() {}"}
	st := &State{Files: ContentHashes(files)}
	if !st.UnchangedFrom(files) {
		t.Fatal("identical tree reported as changed")
	}
	edited := map[string]string{"a.rs": "fn main() { }", "b.rs": "fn f() {}"}
	if st.UnchangedFrom(edited) {
		t.Fatal("edited tree reported as unchanged")
	}
	removed := map[string]string{"a.rs": "fn main() {}"}
	if st.UnchangedFrom(removed) {
		t.Fatal("smaller tree reported as unchanged")
	}
	var nilState *State
	if nilState.UnchangedFrom(files) {
		t.Fatal("nil state reported as unchanged")
	}
}

func TestSortFindingsAndFormat(t *testing.T) {
	fs := []Finding{
		{File: "b.rs", Line: 1, Column: 1, Kind: "x"},
		{File: "a.rs", Line: 2, Column: 1, Kind: "x"},
		{File: "a.rs", Line: 1, Column: 9, Kind: "x"},
		{File: "a.rs", Line: 1, Column: 1, Kind: "z", Message: "m"},
		{File: "a.rs", Line: 1, Column: 1, Kind: "z", Message: "a"},
		{File: "a.rs", Line: 1, Column: 1, Kind: "y"},
	}
	SortFindings(fs)
	order := make([]string, len(fs))
	for i, f := range fs {
		order[i] = f.File + "/" + f.Kind + "/" + f.Message
	}
	want := []string{"a.rs/y/", "a.rs/z/a", "a.rs/z/m", "a.rs/x/", "a.rs/x/", "b.rs/x/"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sort order[%d] = %q, want %q (full order %v)", i, order[i], want[i], order)
		}
	}

	f := Finding{Kind: "double_lock", Severity: "warning", Function: "m::f",
		File: "a.rs", Line: 3, Column: 7, Message: "msg", Notes: []string{"first lock here"}}
	got := f.Format()
	want1 := "a.rs:3:7: warning: [double_lock] msg (in m::f)"
	if !strings.HasPrefix(got, want1) || !strings.Contains(got, "note: first lock here") {
		t.Fatalf("Format() = %q, want prefix %q with note", got, want1)
	}
}
