// Package incrstate is the shared codec for persisted incremental-
// analysis state: the versioned record the CLI's -incremental mode keeps
// in .rustprobe-state.json and the daemon's session service persists in
// the content-addressed store, in one format. It holds enough hashes to
// decide what changed since the previous round (file content, per-file
// interface, per-function body text and declaration position) and enough
// findings to avoid re-deriving the unchanged ones.
//
// The package is deliberately dumb: it defines the wire shape, the
// atomic file codec, and the content-hash helpers, and leaves every
// reuse decision to the owner (rustprobe.Session's restore path, which
// both the CLI and the daemon now delegate to). It imports only the
// standard library so any layer can depend on it.
//
// Versioning: State.Version must equal the version the loader expects
// (rustprobe.StateVersion(): analyzer release + detector registry), or
// the state is discarded — upgrading either silently costs one full run
// instead of replaying findings produced by old logic. States written
// before the fn_pos field existed unmarshal with a nil FnPos and are
// discarded the same way: without position fingerprints a body-only diff
// cannot be trusted not to replay findings at shifted line numbers.
package incrstate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one fully resolved detector report: positions are
// materialized file:line:col so replaying needs no FileSet from the
// process (or daemon epoch) that produced it. The JSON shape matches the
// engine's wire findings field for field.
type Finding struct {
	Kind     string   `json:"kind"`
	Severity string   `json:"severity"`
	Function string   `json:"function"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Message  string   `json:"message"`
	Notes    []string `json:"notes,omitempty"`
}

// Format renders the finding in the CLI's one-line style.
func (f Finding) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: %s: [%s] %s (in %s)",
		f.File, f.Line, f.Column, f.Severity, f.Kind, f.Message, f.Function)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "\n    note: %s", n)
	}
	return b.String()
}

// State is one successful analysis round's cross-run record.
type State struct {
	Version    string               `json:"version"`
	Files      map[string]string    `json:"files"`      // file -> content hash
	Interfaces map[string]string    `json:"interfaces"` // file -> interface hash (bodies excised)
	FnBodies   map[string]string    `json:"fn_bodies"`  // qualified fn -> body hash
	FnPos      map[string]string    `json:"fn_pos"`     // qualified fn -> decl position fingerprint
	Findings   []Finding            `json:"findings"`   // merged, sorted; replayed when nothing changed
	Local      map[string][]Finding `json:"local_findings"`

	// GlobalFacts is a manifest of the exporting session's global-
	// detector fact caches: detector name -> number of per-function
	// entries carried at export time. It is observability only — the
	// caches themselves hold pointers into live MIR and are never
	// serialized, so a restored session's first round re-extracts every
	// fact and reseeds its carries from scratch.
	GlobalFacts map[string]int `json:"global_facts,omitempty"`
}

// Decode parses a serialized State and validates it against the
// expected version. It returns nil for anything untrustworthy — corrupt
// bytes, a version mismatch, or a pre-fn_pos legacy record — because
// every caller's fallback is the same: run a full round.
func Decode(data []byte, version string) *State {
	var st State
	if err := json.Unmarshal(data, &st); err != nil || st.Version != version {
		return nil
	}
	if st.FnPos == nil {
		// Legacy record from before declaration-position fingerprints:
		// replaying its findings after a body edit above an unchanged
		// function would report stale line numbers.
		return nil
	}
	return &st
}

// Encode serializes the state compactly for a persistent-store payload.
// Compact matters: the store embeds payloads as json.RawMessage and
// re-marshaling compacts them, so an indented payload would come back
// byte-different and fail the store's checksum.
func Encode(st *State) ([]byte, error) {
	return json.Marshal(st)
}

// Load reads a state file, returning nil when it is missing, corrupt,
// legacy, or was written for a different version — the caller falls
// back to a full run in every case.
func Load(path, version string) *State {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return Decode(data, version)
}

// Save writes atomically (temp + rename) so a crash mid-write leaves
// either the old state or the new one, never a torn file the next run
// would have to distrust.
func Save(path string, st *State) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rustprobe-state-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ContentHashes digests each source, keyed by file name — the per-file
// change test State.Files records.
func ContentHashes(files map[string]string) map[string]string {
	out := make(map[string]string, len(files))
	for name, src := range files {
		sum := sha256.Sum256([]byte(src))
		out[name] = hex.EncodeToString(sum[:])
	}
	return out
}

// UnchangedFrom reports whether files hash exactly to the state's
// recorded content — the O(files) precondition for replaying Findings
// without any analysis.
func (st *State) UnchangedFrom(files map[string]string) bool {
	if st == nil || len(st.Files) != len(files) {
		return false
	}
	for name, src := range files {
		sum := sha256.Sum256([]byte(src))
		if st.Files[name] != hex.EncodeToString(sum[:]) {
			return false
		}
	}
	return true
}

// SortFindings orders findings by resolved position then kind and
// message — the same order the library's position-resolved merge uses,
// which is what lets findings cached by an earlier process merge with
// fresh ones deterministically.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Message < b.Message
	})
}
