// Package store is a disk-backed, content-addressed analysis-result
// store: the persistent second cache tier under the engine's in-memory
// LRU. One file per cache key holds a versioned, checksummed JSON entry;
// writes go to a temp file in the same directory and are renamed into
// place, so a crash mid-write can never leave a readable-but-wrong
// entry, and concurrent writers (multiple engines sharing one store
// directory, or replicas on a shared volume) settle on whichever rename
// lands last — both wrote the same content for the same key.
//
// Entries carry a version string derived from the analyzer release and
// the detector registry. A version mismatch means the entry was written
// by an incompatible analyzer: it is quarantined and reported as a miss,
// so stale results self-invalidate instead of being served. Truncated or
// corrupt entries (torn writes from a crashed host, bit rot, manual
// tampering) are detected by the checksum at entry-open time and
// quarantined the same way — the store never fails startup, and never
// returns bytes it cannot prove were a complete, matching write.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of store activity since Open.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	PutErrors   uint64 `json:"put_errors"`
	Quarantined uint64 `json:"quarantined"`
	Entries     int64  `json:"entries"`
}

// Store is a content-addressed entry store rooted at one directory.
// All methods are safe for concurrent use, including from multiple
// Store handles (or processes) opened on the same directory.
type Store struct {
	dir     string
	version string

	hits        atomic.Uint64
	misses      atomic.Uint64
	puts        atomic.Uint64
	putErrors   atomic.Uint64
	quarantined atomic.Uint64
	entries     atomic.Int64

	// putMu serializes Put per key only coarsely; renames are atomic so
	// this exists solely to keep the entries counter from double-counting
	// a concurrent first-write of the same key within one handle.
	putMu sync.Mutex
}

// entry is the on-disk JSON shape. Sum is the hex SHA-256 of Payload's
// raw bytes, so a torn or tampered payload is detectable; Version gates
// compatibility; Key is recorded for forensics on quarantined files.
type entry struct {
	Version string          `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

const (
	quarantineDir = "quarantine"
	tmpPrefix     = ".tmp-"
)

// Open roots a store at dir (created if missing), binding it to the
// given entry version. Stale temp files from a crashed writer are swept;
// existing entries are counted but not read — validation happens per
// entry at Get, so a directory full of junk can never fail startup.
func Open(dir, version string) (*Store, error) {
	if version == "" {
		return nil, fmt.Errorf("store: empty version")
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, version: version}
	// Sweep temp files abandoned by a crashed writer and count entries.
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				os.Remove(filepath.Join(dir, sh.Name(), f.Name()))
				continue
			}
			s.entries.Add(1)
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Version returns the entry version this handle reads and writes.
func (s *Store) Version() string { return s.version }

// path shards entries two hex characters deep so one directory never
// holds the whole fleet's keys.
func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key)
}

// validKey keeps keys usable as file names (the engine's SHA-256 hex
// keys always pass; anything else is rejected rather than trusted).
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Get returns the stored payload for key. A missing entry is a plain
// miss. An unreadable, truncated, corrupt, wrong-key or version-
// mismatched entry is quarantined (moved aside, never deleted — the
// bytes stay inspectable) and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		s.quarantine(key, p, "corrupt")
		s.misses.Add(1)
		return nil, false
	}
	sum := sha256.Sum256(e.Payload)
	switch {
	case e.Version != s.version:
		s.quarantine(key, p, "version")
		s.misses.Add(1)
		return nil, false
	case e.Key != key || e.Sum != hex.EncodeToString(sum[:]) || len(e.Payload) == 0:
		s.quarantine(key, p, "corrupt")
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e.Payload, true
}

// quarantine moves a bad entry into the quarantine directory under a
// reason-tagged name. Failure to move (e.g. a concurrent quarantine of
// the same file) falls back to removal so the poison entry cannot be
// served again either way. The entries counter is only adjusted when
// this handle actually took the file off disk — a loser of a concurrent
// quarantine race must not double-decrement — and is clamped at zero,
// since the entry may have been written by another handle after Open and
// so never counted here.
func (s *Store) quarantine(key, path, reason string) {
	s.quarantined.Add(1)
	dst := filepath.Join(s.dir, quarantineDir, reason+"-"+filepath.Base(key))
	removed := os.Rename(path, dst) == nil
	if !removed {
		removed = os.Remove(path) == nil
	}
	if !removed {
		return
	}
	for {
		n := s.entries.Load()
		if n <= 0 || s.entries.CompareAndSwap(n, n-1) {
			return
		}
	}
}

// Put writes payload under key: temp file in the entry's shard
// directory, then an atomic rename into place. Losing a rename race to
// a concurrent writer of the same key is fine — same key, same content.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		s.putErrors.Add(1)
		return fmt.Errorf("store: invalid key %q", key)
	}
	if len(payload) == 0 {
		s.putErrors.Add(1)
		return fmt.Errorf("store: empty payload for key %s", key)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(entry{
		Version: s.version,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	p := s.path(key)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	s.putMu.Lock()
	defer s.putMu.Unlock()
	_, statErr := os.Stat(p)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	s.puts.Add(1)
	if statErr != nil { // key was absent before this write
		s.entries.Add(1)
	}
	return nil
}

// Len reports the entry count (as tracked by this handle: counted at
// Open, adjusted by puts and quarantines; concurrent handles each track
// their own view).
func (s *Store) Len() int { return int(s.entries.Load()) }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		PutErrors:   s.putErrors.Load(),
		Quarantined: s.quarantined.Load(),
		Entries:     s.entries.Load(),
	}
}
