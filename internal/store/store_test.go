package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func key(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	payload := []byte(`{"findings":[],"unsafe":{"regions":1}}`)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("got %q ok=%v, want payload back", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEntriesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, "v1")
	for i := 0; i < 5; i++ {
		if err := s.Put(key(fmt.Sprint(i)), []byte(`{"i":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(key(fmt.Sprint(i))); !ok {
			t.Fatalf("entry %d lost across reopen", i)
		}
	}
}

// corruptEntry rewrites the stored file for key k via fn.
func corruptEntry(t *testing.T, s *Store, k string, fn func([]byte) []byte) {
	t.Helper()
	p := s.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func quarantineCount(t *testing.T, s *Store) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

func TestTruncatedEntryQuarantinedAtOpen(t *testing.T) {
	s, _ := Open(t.TempDir(), "v1")
	k := key("t")
	if err := s.Put(k, []byte(`{"big":"payload that will be torn"}`)); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s, k, func(b []byte) []byte { return b[:len(b)/2] })
	if _, ok := s.Get(k); ok {
		t.Fatal("truncated entry served")
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if quarantineCount(t, s) != 1 {
		t.Fatal("truncated entry not moved to quarantine dir")
	}
	// The poison entry is gone: the next read is a plain miss, and a
	// fresh put re-establishes the key.
	if _, ok := s.Get(k); ok {
		t.Fatal("quarantined entry still readable")
	}
	if err := s.Put(k, []byte(`{"fresh":true}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("re-put after quarantine missed")
	}
}

func TestCorruptPayloadQuarantined(t *testing.T) {
	s, _ := Open(t.TempDir(), "v1")
	k := key("c")
	if err := s.Put(k, []byte(`{"value":12345}`)); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes but keep the JSON well-formed: checksum catches it.
	corruptEntry(t, s, k, func(b []byte) []byte {
		return []byte(strings.Replace(string(b), "12345", "54321", 1))
	})
	if _, ok := s.Get(k); ok {
		t.Fatal("checksum-mismatched entry served")
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if got := s.Stats().Entries; got != 0 {
		t.Fatalf("entries = %d after quarantining the only entry, want 0", got)
	}
}

// TestQuarantineEntriesCounterNeverNegative: quarantining an entry this
// handle never counted (dropped into the directory after Open, e.g. by a
// concurrent handle) must not drive the entries counter negative, and a
// quarantine that loses the file-removal race must not decrement at all.
func TestQuarantineEntriesCounterNeverNegative(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "v1") // empty: this handle counted 0 entries
	if err != nil {
		t.Fatal(err)
	}
	k := key("planted")
	if err := os.MkdirAll(filepath.Dir(s.path(k)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt planted entry served")
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if st.Entries < 0 {
		t.Fatalf("entries = %d, went negative", st.Entries)
	}

	// Losing the quarantine race entirely (file already gone) leaves the
	// counter untouched.
	if err := s.Put(key("real"), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Entries
	s.quarantine(key("ghost"), s.path(key("ghost")), "corrupt")
	if got := s.Stats().Entries; got != before {
		t.Fatalf("entries = %d after no-op quarantine, want %d", got, before)
	}
}

func TestVersionMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	old, _ := Open(dir, "detectors-v1")
	k := key("v")
	if err := old.Put(k, []byte(`{"stale":true}`)); err != nil {
		t.Fatal(err)
	}
	// A new analyzer release opens the same directory: the old entry
	// must self-invalidate, not be served.
	s, err := Open(dir, "detectors-v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("stale-version entry served")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 quarantine and no hits", st)
	}
	// The key is writable again under the new version.
	if err := s.Put(k, []byte(`{"fresh":true}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("fresh entry missed after version quarantine")
	}
}

func TestOpenSweepsAbandonedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, "v1")
	k := key("x")
	if err := s.Put(k, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer that crashed mid-Put: a temp file in the shard.
	shard := filepath.Dir(s.path(k))
	tmp := filepath.Join(shard, tmpPrefix+"crashed")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(tmp); !os.IsNotExist(statErr) {
		t.Fatal("abandoned temp file survived reopen")
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d after sweep, want 1 (temp files are not entries)", s2.Len())
	}
	if _, ok := s2.Get(k); !ok {
		t.Fatal("real entry lost by sweep")
	}
}

func TestOpenNeverFailsOnJunkDirectory(t *testing.T) {
	dir := t.TempDir()
	// Junk: a stray file at the root, a shard full of garbage.
	os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644)
	os.MkdirAll(filepath.Join(dir, "ab"), 0o755)
	os.WriteFile(filepath.Join(dir, "ab", "abnotakeyatall"), []byte("garbage"), 0o644)
	s, err := Open(dir, "v1")
	if err != nil {
		t.Fatalf("Open failed on junk directory: %v", err)
	}
	if _, ok := s.Get("abnotakeyatall"); ok {
		t.Fatal("junk served as an entry")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, _ := Open(t.TempDir(), "v1")
	for _, k := range []string{"", "../escape", "a/b", strings.Repeat("k", 200)} {
		if err := s.Put(k, []byte(`{}`)); err == nil {
			t.Fatalf("Put accepted invalid key %q", k)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("Get hit on invalid key %q", k)
		}
	}
}

// TestConcurrentMultiHandleAccess drives two Store handles on one
// directory (the multi-engine / shared-volume shape) from many
// goroutines. Every read must return either a miss or a complete,
// checksum-valid payload — never torn bytes.
func TestConcurrentMultiHandleAccess(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir, "v1")
	b, _ := Open(dir, "v1")
	const keys = 16
	payload := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"key":%d,"fill":%q}`, i, strings.Repeat("x", 512)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		for _, s := range []*Store{a, b} {
			wg.Add(1)
			go func(s *Store, w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k := key(fmt.Sprint((i + w) % keys))
					if i%3 == 0 {
						if err := s.Put(k, payload((i+w)%keys)); err != nil {
							t.Errorf("put: %v", err)
							return
						}
					}
					if got, ok := s.Get(k); ok {
						if string(got) != string(payload((i+w)%keys)) {
							t.Errorf("torn read for %s: %q", k, got)
							return
						}
					}
				}
			}(s, w)
		}
	}
	wg.Wait()
	if got := a.Stats().Quarantined + b.Stats().Quarantined; got != 0 {
		t.Fatalf("concurrent same-version writes caused %d quarantines", got)
	}
}
