package corpus

import (
	"sort"
	"strings"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/detect/blocking"
	"rustprobe/internal/detect/dfree"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/interiormut"
	"rustprobe/internal/detect/lockorder"
	"rustprobe/internal/detect/race"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/detect/uninit"
	"rustprobe/internal/lower"
	"rustprobe/internal/study"
	"rustprobe/internal/unsafety"
)

func loadCtx(t *testing.T, group Group) *detect.Context {
	t.Helper()
	prog, diags, err := Load(group)
	if err != nil {
		t.Fatalf("load %s: %v", group, err)
	}
	bodies := lower.Program(prog, diags)
	if diags.HasErrors() {
		t.Fatalf("lowering errors:\n%s", diags.String())
	}
	return detect.NewContext(prog, bodies)
}

func TestCorpusParses(t *testing.T) {
	for _, g := range []Group{GroupDetectorEval, GroupPatterns, GroupUnsafe, GroupApps, GroupAll} {
		if _, _, err := Load(g); err != nil {
			t.Errorf("group %s: %v", g, err)
		}
	}
}

func TestAllFilesGrouped(t *testing.T) {
	grouped := map[string]bool{}
	for _, g := range []Group{GroupDetectorEval, GroupPatterns, GroupUnsafe, GroupApps} {
		files, err := Files(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			grouped[f.Path] = true
		}
	}
	for _, p := range AllPaths() {
		if !grouped[p] {
			t.Errorf("embedded file %s belongs to no group", p)
		}
	}
}

// TestSection7UAFResults pins the paper's §7.1 outcome: 4 previously
// unknown use-after-free bugs and 3 false positives on the evaluation set.
func TestSection7UAFResults(t *testing.T) {
	ctx := loadCtx(t, GroupDetectorEval)
	findings := uaf.New().Run(ctx)
	var tps, fps int
	for _, f := range findings {
		if f.Kind != detect.KindUseAfterFree {
			continue
		}
		switch {
		case strings.Contains(f.Function, "fp_"):
			fps++
		default:
			tps++
		}
	}
	if tps != study.UAFBugsFound {
		t.Errorf("UAF true positives = %d, want %d\n%s", tps, study.UAFBugsFound, dump(ctx, findings))
	}
	if fps != study.UAFFalsePositives {
		t.Errorf("UAF false positives = %d, want %d\n%s", fps, study.UAFFalsePositives, dump(ctx, findings))
	}
	// Each buggy function is flagged exactly once.
	perFn := map[string]int{}
	for _, f := range findings {
		perFn[f.Function]++
	}
	for fn, n := range perFn {
		if n != 1 {
			t.Errorf("function %s flagged %d times, want 1", fn, n)
		}
	}
}

// TestSection7UAFPreciseResults pins the precise-mode delta on the same
// evaluation set: the path-sensitive drop-and-alias refuter keeps every
// true positive and clears each of the three planted false-positive
// patterns individually.
func TestSection7UAFPreciseResults(t *testing.T) {
	ctx := loadCtx(t, GroupDetectorEval)
	findings := uaf.NewPrecise().Run(ctx)
	var tps, fps int
	flagged := map[string]bool{}
	for _, f := range findings {
		if f.Kind != detect.KindUseAfterFree {
			continue
		}
		flagged[f.Function] = true
		if strings.Contains(f.Function, "fp_") {
			fps++
		} else {
			tps++
		}
	}
	if tps != study.UAFPreciseBugsFound {
		t.Errorf("precise UAF true positives = %d, want %d\n%s", tps, study.UAFPreciseBugsFound, dump(ctx, findings))
	}
	if fps != study.UAFPreciseFalsePositives {
		t.Errorf("precise UAF false positives = %d, want %d\n%s", fps, study.UAFPreciseFalsePositives, dump(ctx, findings))
	}
	// Each planted FP cause must be individually refuted, and precise mode
	// must lose none of the default mode's true positives.
	for _, fn := range []string{"fp_context", "fp_flow", "fp_path"} {
		if flagged[fn] {
			t.Errorf("precise mode still reports planted false positive %s", fn)
		}
	}
	for _, f := range uaf.New().Run(ctx) {
		if f.Kind == detect.KindUseAfterFree && !strings.Contains(f.Function, "fp_") && !flagged[f.Function] {
			t.Errorf("precise mode lost default true positive in %s", f.Function)
		}
	}
}

// TestSection7DoubleLockResults pins §7.2: 6 double locks, 0 false
// positives (the *_fixed and clean variants stay silent).
func TestSection7DoubleLockResults(t *testing.T) {
	ctx := loadCtx(t, GroupDetectorEval)
	findings := doublelock.New().Run(ctx)
	var buggy, clean int
	for _, f := range findings {
		if f.Kind != detect.KindDoubleLock {
			continue
		}
		if strings.Contains(f.Function, "fixed") || strings.Contains(f.Function, "transfer") {
			clean++
		} else {
			buggy++
		}
	}
	if buggy != study.DoubleLockBugsFound {
		t.Errorf("double-lock bugs = %d, want %d\n%s", buggy, study.DoubleLockBugsFound, dump(ctx, findings))
	}
	if clean != study.DoubleLockFalsePos {
		t.Errorf("double-lock false positives = %d, want %d\n%s", clean, study.DoubleLockFalsePos, dump(ctx, findings))
	}
}

// TestSection62RaceResults pins the §6.2 extension: the data-race
// detector finds the five seeded non-blocking races in the patterns
// corpus (one per studied project) and stays silent on every
// synchronized fixed variant and negative-control shape.
func TestSection62RaceResults(t *testing.T) {
	ctx := loadCtx(t, GroupPatterns)
	findings := race.New().Run(ctx)
	var tps, fps int
	for _, f := range findings {
		if f.Kind != detect.KindDataRace {
			continue
		}
		if strings.Contains(f.Function, "fixed") {
			fps++
		} else {
			tps++
		}
	}
	if tps != study.RaceBugsFound {
		t.Errorf("race true positives = %d, want %d\n%s", tps, study.RaceBugsFound, dump(ctx, findings))
	}
	if fps != study.RaceFalsePos {
		t.Errorf("race false positives = %d, want %d\n%s", fps, study.RaceFalsePos, dump(ctx, findings))
	}
	// One finding per seeded race, in the expected function.
	perFn := map[string]int{}
	for _, f := range findings {
		perFn[f.Function]++
	}
	for _, fn := range []string{"push_work", "dispatch", "spawn_reflow", "audit_workers", "shard_counters"} {
		if perFn[fn] != 1 {
			t.Errorf("function %s flagged %d times, want 1\n%s", fn, perFn[fn], dump(ctx, findings))
		}
	}
}

// TestSection61BlockingResults pins the §6.1 extension: the blocking
// detector finds the nine seeded non-double-lock blocking bugs in the
// patterns corpus — two channel hold-and-wait cycles, one all-ends-
// waiting cycle through channel parameters, one orphaned recv, three
// Condvar lost signals (one param-rooted), two Once reentrancies (one
// through a closure binding passed into a helper) — and stays silent on
// every paired fixed variant and negative control. The worker_a cycle,
// the wait_armed param-rooted wait, and the deep_init closure binding
// were the detector's three documented false negatives before the
// caller-side identity propagation closed them.
func TestSection61BlockingResults(t *testing.T) {
	ctx := loadCtx(t, GroupPatterns)
	findings := blocking.New().Run(ctx)
	var tps, fps int
	for _, f := range findings {
		if f.Kind != detect.KindBlocking {
			continue
		}
		if strings.Contains(f.Function, "fixed") || strings.Contains(f.Function, "fp_") {
			fps++
		} else {
			tps++
		}
	}
	if tps != study.BlockingBugsFound {
		t.Errorf("blocking true positives = %d, want %d\n%s", tps, study.BlockingBugsFound, dump(ctx, findings))
	}
	if fps != study.BlockingFalsePos {
		t.Errorf("blocking false positives = %d, want %d\n%s", fps, study.BlockingFalsePos, dump(ctx, findings))
	}
	// One finding per seeded bug, in the expected function.
	perFn := map[string]int{}
	for _, f := range findings {
		perFn[f.Function]++
	}
	for _, fn := range []string{"ScriptThread::sync_reflow", "Pipeline::recv_while_locked",
		"poll_orphaned", "Miner::wait_for_seal", "Worker::wait_forever", "recursive_once",
		"worker_a", "wait_armed", "deep_init"} {
		if perFn[fn] != 1 {
			t.Errorf("function %s flagged %d times, want 1\n%s", fn, perFn[fn], dump(ctx, findings))
		}
	}
	// Negative controls must be silent.
	for _, fn := range []string{"ScriptThread::sync_reflow_fixed", "Sealer::await_seal",
		"WorkerFixed::wait_ready", "poll_with_sender", "config_fixed", "layered_init",
		"worker_c", "worker_d", "fp_seeded_pipeline",
		"wait_armed_fixed", "RelayFixed::block_until_armed",
		"fp_deep_init", "run_guarded"} {
		if perFn[fn] != 0 {
			t.Errorf("negative control %s flagged\n%s", fn, dump(ctx, findings))
		}
	}
}

// TestPatternsFlagBuggyNotFixed runs both detectors over the figure
// patterns: every figure's buggy function must be flagged, every fixed
// variant must stay clean.
func TestPatternsFlagBuggyNotFixed(t *testing.T) {
	ctx := loadCtx(t, GroupPatterns)
	var findings []detect.Finding
	findings = append(findings, uaf.New().Run(ctx)...)
	findings = append(findings, doublelock.New().Run(ctx)...)
	findings = append(findings, race.New().Run(ctx)...)
	findings = append(findings, blocking.New().Run(ctx)...)

	flagged := map[string]bool{}
	for _, f := range findings {
		flagged[f.Function] = true
	}
	mustFlag := []string{"sign", "do_request", "RegionRegistry::broken_reload",
		"push_work", "dispatch", "spawn_reflow", "audit_workers", "shard_counters",
		"ScriptThread::sync_reflow", "Miner::wait_for_seal", "recursive_once",
		"worker_a", "wait_armed", "deep_init"}
	for _, fn := range mustFlag {
		if !flagged[fn] {
			t.Errorf("buggy pattern %s not flagged\n%s", fn, dump(ctx, findings))
		}
	}
	mustNotFlag := []string{"sign_fixed", "do_request_fixed", "RegionRegistry::fixed_reload",
		"push_work_fixed", "spawn_reflow_fixed", "guarded_update", "single_thread_alias",
		"guard_handoff", "atomic_counter",
		"ScriptThread::sync_reflow_fixed", "Sealer::await_seal", "WorkerFixed::wait_ready",
		"poll_with_sender", "config_fixed", "layered_init",
		"worker_c", "fp_seeded_pipeline", "wait_armed_fixed", "fp_deep_init"}
	for _, fn := range mustNotFlag {
		if flagged[fn] {
			t.Errorf("fixed pattern %s flagged\n%s", fn, dump(ctx, findings))
		}
	}
}

func TestSyntheticCommitsMine(t *testing.T) {
	db := study.Build()
	commits := SyntheticCommits(db)
	cands, funnel := study.Mine(commits)
	// Every bug commit survives the keyword filter; every noise commit is
	// rejected.
	if funnel.Filtered != 170 {
		t.Errorf("filtered = %d, want 170", funnel.Filtered)
	}
	if funnel.Total != 340 {
		t.Errorf("total = %d, want 340", funnel.Total)
	}
	if len(cands) != 170 {
		t.Errorf("candidates = %d", len(cands))
	}
}

func dump(ctx *detect.Context, findings []detect.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.Format(ctx.Fset))
		b.WriteString("\n")
	}
	return b.String()
}

// TestUnsafeScanCorpusNumbers pins the EXPERIMENTS.md §4 corpus-scan
// figures so the docs stay honest as the corpus evolves.
func TestUnsafeScanCorpusNumbers(t *testing.T) {
	prog, _, err := Load(GroupUnsafe)
	if err != nil {
		t.Fatal(err)
	}
	rep := unsafety.Scan(prog)
	if rep.TotalUsages() != 24 || rep.Regions != 13 || rep.Fns != 7 || rep.Traits != 4 {
		t.Errorf("scan = %d total (%d regions, %d fns, %d traits); EXPERIMENTS.md says 24 (13/7/4)",
			rep.TotalUsages(), rep.Regions, rep.Fns, rep.Traits)
	}
	removable := rep.Removable()
	ctors := 0
	for _, u := range removable {
		if u.CtorLabel {
			ctors++
		}
	}
	if ctors < 1 {
		t.Error("constructor-label idiom not found in the corpus")
	}
	if len(rep.UncheckedInterior()) == 0 {
		t.Error("no unchecked interior-unsafe functions found")
	}
}

// TestAppsGroupClean: the app-scale modules are intentionally bug-free —
// every detector must stay silent on them.
func TestAppsGroupClean(t *testing.T) {
	ctx := loadCtx(t, GroupApps)
	var findings []detect.Finding
	findings = append(findings, uaf.New().Run(ctx)...)
	findings = append(findings, doublelock.New().Run(ctx)...)
	findings = append(findings, race.New().Run(ctx)...)
	findings = append(findings, blocking.New().Run(ctx)...)
	if len(findings) != 0 {
		t.Fatalf("apps group flagged:\n%s", dump(ctx, findings))
	}
}

// TestPatternIndexComplete: every Table 2/3/4 category has a pattern
// cross-reference pointing at a real embedded file that contains the named
// function.
func TestPatternIndexComplete(t *testing.T) {
	for _, eff := range study.MemEffects {
		if _, ok := MemPatterns[eff]; !ok {
			t.Errorf("no pattern for memory effect %v", eff)
		}
	}
	for _, prim := range study.SyncPrimitives {
		if _, ok := BlkPatterns[prim]; !ok {
			t.Errorf("no pattern for primitive %v", prim)
		}
	}
	for _, mode := range study.ShareModes {
		if _, ok := SharePatterns[mode]; !ok {
			t.Errorf("no pattern for share mode %v", mode)
		}
	}
	embedded := map[string]string{}
	for _, g := range []Group{GroupDetectorEval, GroupPatterns, GroupUnsafe, GroupApps} {
		files, err := Files(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			embedded[f.Path] = f.Content
		}
	}
	for _, ref := range AllPatternRefs() {
		content, ok := embedded[ref.Path]
		if !ok {
			t.Errorf("pattern file %s not embedded", ref.Path)
			continue
		}
		fn := ref.Function
		if i := strings.LastIndex(fn, "::"); i >= 0 {
			fn = fn[i+2:]
		}
		if !strings.Contains(content, "fn "+fn) {
			t.Errorf("pattern %s missing function %s", ref.Path, ref.Function)
		}
	}
}

// TestPatternFindingsSnapshot pins the complete (kind, function) finding
// set of every static detector over the patterns corpus: an end-to-end
// regression guard for the frontend, lowering, analyses and detectors at
// once.
func TestPatternFindingsSnapshot(t *testing.T) {
	ctx := loadCtx(t, GroupPatterns)
	var got []string
	for _, d := range []detect.Detector{
		uaf.New(), doublelock.New(), lockorder.New(), blocking.New(),
		dfree.New(), uninit.New(), interiormut.New(), race.New(),
	} {
		for _, f := range d.Run(ctx) {
			got = append(got, string(f.Kind)+"|"+f.Function)
		}
	}
	sort.Strings(got)
	want := []string{
		"blocking|Miner::wait_for_seal",                                    // condvar.rs conditional notify
		"blocking|Pipeline::recv_while_locked",                             // blocking_patterns.rs hold-and-wait
		"blocking|ScriptThread::sync_reflow",                               // channel_deadlock.rs recv under sender's lock
		"blocking|Worker::wait_forever",                                    // blocking_patterns.rs missing notify
		"blocking|deep_init",                                               // lazy_init.rs Once reentry through closure param
		"blocking|poll_orphaned",                                           // channel_deadlock.rs dropped sender
		"blocking|recursive_once",                                          // blocking_patterns.rs Once reentrancy
		"blocking|wait_armed",                                              // condvar.rs param-rooted lost signal
		"blocking|worker_a",                                                // channel_deadlock.rs all ends waiting
		"conflicting-lock-order|Ledger::path_a",                            // lock_order.rs AB-BA
		"data-race|audit_workers",                                          // race_metrics.rs static mut via helper
		"data-race|dispatch",                                               // race_scheme.rs Vec push vs len
		"data-race|push_work",                                              // race_sealer.rs counter vs read
		"data-race|shard_counters",                                         // race_metrics.rs loop-spawn self-race
		"data-race|spawn_reflow",                                           // race_reflow.rs write/write
		"double-free|duplicate_owner",                                      // ptr::read duplication
		"double-lock|Cache::double_borrow",                                 // RefCell borrow_mut x2
		"double-lock|RegionRegistry::broken_reload",                        // registry_cycle.rs SCC-fixpoint summary
		"double-lock|do_request",                                           // Figure 8
		"invalid-free|_fdopen",                                             // Figure 6
		"uninitialized-read|read_garbage",                                  // alloc-then-read
		"unsynchronized-interior-mutability|AuthorityRound::generate_seal", // Figure 9
		"unsynchronized-interior-mutability|Queue::remove_head",            // Figure 5
		"unsynchronized-interior-mutability|TestCell::set",                 // Figure 4
		"use-after-free|sign",                                              // Figure 7
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot size %d != %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
