package corpus

import "rustprobe/internal/study"

// PatternRef ties one studied bug category to the corpus file that encodes
// it, realizing DESIGN.md's per-experiment index at the code level: every
// Table 2 effect, Table 3 primitive and Table 4 sharing mode has at least
// one machine-checked pattern.
type PatternRef struct {
	Path     string // embedded corpus path
	Function string // representative buggy function
	Figure   int    // paper figure number, 0 when none
}

// MemPatterns maps Table 2 effects to corpus patterns.
var MemPatterns = map[study.MemEffect]PatternRef{
	study.EffectBuffer:      {Path: "rust/servo/buffer_overflow.rs", Function: "Frame::pixel_unchecked"},
	study.EffectNull:        {Path: "rust/servo/bioslice_sign.rs", Function: "sign", Figure: 7}, // null_mut branch feeds the same call
	study.EffectUninit:      {Path: "rust/redox/uninit_read.rs", Function: "read_garbage"},
	study.EffectInvalidFree: {Path: "rust/redox/relibc_fdopen.rs", Function: "_fdopen", Figure: 6},
	study.EffectUAF:         {Path: "rust/servo/bioslice_sign.rs", Function: "sign", Figure: 7},
	study.EffectDoubleFree:  {Path: "rust/libs/double_free_read.rs", Function: "duplicate_owner"},
}

// BlkPatterns maps Table 3 primitives to corpus patterns.
var BlkPatterns = map[study.SyncPrimitive]PatternRef{
	study.PrimMutex:   {Path: "rust/tikv/double_lock_match.rs", Function: "do_request", Figure: 8},
	study.PrimCondvar: {Path: "rust/ethereum/condvar.rs", Function: "Miner::wait_for_seal"},
	study.PrimChannel: {Path: "rust/servo/channel_deadlock.rs", Function: "ScriptThread::sync_reflow"},
	study.PrimOnce:    {Path: "rust/servo/blocking_patterns.rs", Function: "recursive_once"},
	study.PrimOther:   {Path: "rust/servo/blocking_patterns.rs", Function: "Pipeline::recv_while_locked"},
}

// Share patterns map Table 4 sharing modes to corpus patterns.
var SharePatterns = map[study.ShareMode]PatternRef{
	study.ShareGlobal:  {Path: "rust/libs/lazy_init.rs", Function: "config_racy"},
	study.SharePointer: {Path: "rust/tock/mmio_share.rs", Function: "UartRegisters::enable_tx_racy"},
	study.ShareSync:    {Path: "rust/std/testcell.rs", Function: "TestCell::set", Figure: 4},
	study.ShareOSHw:    {Path: "rust/tock/mmio_share.rs", Function: "UartRegisters::enable_tx_racy"},
	study.ShareAtomic:  {Path: "rust/ethereum/authority_round.rs", Function: "AuthorityRound::generate_seal", Figure: 9},
	study.ShareMutex:   {Path: "rust/libs/nonblocking_patterns.rs", Function: "Counter::increment_racy"},
	study.ShareMessage: {Path: "rust/servo/channel_deadlock.rs", Function: "worker_a"},
}

// AllPatternRefs returns every cross-reference for index tooling.
func AllPatternRefs() []PatternRef {
	var out []PatternRef
	for _, p := range MemPatterns {
		out = append(out, p)
	}
	for _, p := range BlkPatterns {
		out = append(out, p)
	}
	for _, p := range SharePatterns {
		out = append(out, p)
	}
	return out
}
