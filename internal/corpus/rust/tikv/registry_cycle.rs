// Caller-holds/callee-locks deadlock behind a recursive maintenance
// cycle (modeled on TiKV's region-registry upkeep): audit, balance and
// compact call each other — audit <-> balance and balance <-> compact —
// and audit takes the registry lock in a scoped critical section.
// Propagating "may acquire self.regions" from audit around both cycles
// to compact needs a summary fixpoint over the SCC; a bounded number of
// post-order rounds leaves compact's lock-set empty and the deadlock in
// broken_reload (guard live across the compact() call) goes unreported.

struct RegionRegistry {
    regions: Mutex<i32>,
}

impl RegionRegistry {
    fn audit(&self, n: i32) -> i32 {
        let healthy = { let g = self.regions.lock().unwrap(); *g };
        if n > 0 {
            return self.balance(n - 1);
        }
        healthy
    }

    fn balance(&self, n: i32) -> i32 {
        if n > 2 {
            return self.audit(n - 1);
        }
        if n > 0 {
            return self.compact(n - 1);
        }
        0
    }

    fn compact(&self, n: i32) -> i32 {
        if n > 0 {
            return self.balance(n - 1);
        }
        1
    }

    pub fn broken_reload(&self) {
        let g = self.regions.lock().unwrap();
        let compacted = self.compact(4);
    }

    pub fn fixed_reload(&self) {
        let before = { let g = self.regions.lock().unwrap(); *g };
        let compacted = self.compact(4);
    }
}
