// App-scale corpus: a TiKV-flavored raft store exercising enums with
// payloads, trait objects, channels and the statement-bound guard
// discipline. Intentionally bug-free.

pub enum RaftMessage {
    AppendEntries(i32, Vec<i32>),
    Vote(i32),
    Heartbeat,
    Snapshot { index: i32, data: Vec<u8> },
}

pub enum Role {
    Follower,
    Candidate,
    Leader,
}

pub struct RaftState {
    term: i32,
    commit_index: i32,
    role: Role,
    log: Vec<i32>,
}

pub struct PeerStore {
    state: RwLock<RaftState>,
    mailbox: Receiver<RaftMessage>,
    outbound: Sender<RaftMessage>,
    applied: AtomicUsize,
}

impl PeerStore {
    pub fn current_term(&self) -> i32 {
        let st = self.state.read().unwrap();
        st.term
    }

    pub fn step(&self) -> bool {
        let msg = self.mailbox.recv().unwrap();
        match msg {
            RaftMessage::AppendEntries(term, entries) => {
                let mut st = self.state.write().unwrap();
                if term < st.term {
                    return false;
                }
                st.term = term;
                for e in entries.iter() {
                    st.log.push(*e);
                }
                st.commit_index = st.log.len() as i32;
                true
            }
            RaftMessage::Vote(term) => {
                let granted = { let st = self.state.read().unwrap(); term > st.term };
                if granted {
                    let mut st = self.state.write().unwrap();
                    st.term = term;
                    st.role = Role::Follower;
                }
                granted
            }
            RaftMessage::Heartbeat => {
                self.applied.fetch_add(1);
                true
            }
            RaftMessage::Snapshot { index, data } => {
                let mut st = self.state.write().unwrap();
                st.commit_index = index;
                st.log = Vec::new();
                record_snapshot(index, data.len());
                true
            }
        }
    }

    pub fn campaign(&self) {
        let term = {
            let mut st = self.state.write().unwrap();
            st.role = Role::Candidate;
            st.term += 1;
            st.term
        };
        self.outbound.send(RaftMessage::Vote(term));
    }

    pub fn is_leader(&self) -> bool {
        let st = self.state.read().unwrap();
        match st.role {
            Role::Leader => true,
            _ => false,
        }
    }
}

pub fn quorum(voters: usize) -> usize {
    voters / 2 + 1
}

pub fn replay(store: PeerStore, rounds: usize) -> usize {
    let mut progressed = 0;
    for _ in 0..rounds {
        if store.step() {
            progressed += 1;
        }
    }
    progressed
}
