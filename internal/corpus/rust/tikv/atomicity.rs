// TiKV's non-blocking shapes (Table 4: one atomic, one mutex, one
// OS-resource sharing bug): a check-then-act atomicity violation on a
// scheduler counter and its single-critical-section fix.

struct Scheduler {
    pending: Mutex<i32>,
    running: AtomicUsize,
    limit: usize,
}

impl Scheduler {
    // Atomicity violation: the load and the store are separate atomic
    // operations; two threads can both pass the limit check.
    fn try_admit_racy(&self) -> bool {
        if self.running.load() < self.limit {
            self.running.fetch_add(1);
            return true;
        }
        false
    }

    // Fix shape: a single read-modify-write with a rollback.
    fn try_admit_fixed(&self) -> bool {
        let prev = self.running.fetch_add(1);
        if prev >= self.limit {
            self.running.fetch_sub(1);
            return false;
        }
        true
    }

    fn queue_depth(&self) -> i32 {
        let g = self.pending.lock().unwrap();
        *g
    }
}
