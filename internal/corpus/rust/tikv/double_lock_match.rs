// Figure 8 (TiKV): the read guard returned inside the match scrutinee is
// held until the end of the match, so the write() in the Ok arm double
// locks — plus the committed fix.

struct Inner {
    m: i32,
}

fn connect(m: i32) -> Result<i32, i32> {
    if m > 0 { Ok(m) } else { Err(m) }
}

pub fn do_request(client: Arc<RwLock<Inner>>) {
    match connect(client.read().unwrap().m) {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}

pub fn do_request_fixed(client: Arc<RwLock<Inner>>) {
    let result = connect(client.read().unwrap().m);
    match result {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
