// TiKV-style global metrics (§6.2 non-blocking): a static mut counter
// bumped from worker threads through a helper function. The race is only
// visible inter-procedurally — the write sits in note_slow, two call
// levels below the spawn.

static mut SLOW_QUERIES: u64 = 0;

fn note_slow() {
    unsafe {
        SLOW_QUERIES += 1;
    }
}

// Buggy: two workers race on the unprotected global.
fn audit_workers() {
    thread::spawn(move || {
        note_slow();
    });
    thread::spawn(move || {
        note_slow();
    });
}

struct DbStats {
    flushes: u64,
}

// Buggy: one closure spawned per shard; its instances race with each
// other even though the spawner never touches the stats again.
fn shard_counters(db: Arc<DbStats>) {
    for i in 0..4 {
        let shard = Arc::clone(&db);
        thread::spawn(move || {
            shard.flushes += 1;
        });
    }
}
