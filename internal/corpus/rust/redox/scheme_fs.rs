// App-scale corpus: a Redox-flavored filesystem scheme with the
// unsafe-buffer discipline relibc uses — checked interior-unsafe
// accessors, ptr::write initialization, and FFI-style entry points.
// Intentionally bug-free.

pub struct Inode {
    number: usize,
    size: usize,
    blocks: Vec<u32>,
}

pub struct FileTable {
    entries: Vec<Inode>,
    free: Vec<usize>,
}

impl FileTable {
    pub fn new() -> FileTable {
        FileTable { entries: Vec::new(), free: Vec::new() }
    }

    pub fn allocate(&mut self, size: usize) -> usize {
        match self.free.pop() {
            Some(slot) => {
                record_reuse(slot);
                slot
            }
            None => {
                let n = self.entries.len();
                self.entries.push(Inode { number: n, size: size, blocks: Vec::new() });
                n
            }
        }
    }

    pub fn release(&mut self, slot: usize) {
        if slot >= self.entries.len() {
            return;
        }
        self.free.push(slot);
    }

    pub fn block_at(&self, slot: usize, idx: usize) -> u32 {
        if slot >= self.entries.len() {
            return 0;
        }
        let inode = &self.entries[slot];
        if idx >= inode.blocks.len() {
            return 0;
        }
        unsafe { *inode.blocks.get_unchecked(idx) }
    }
}

pub struct BlockBuffer {
    data: *mut u8,
    len: usize,
}

impl BlockBuffer {
    pub unsafe fn from_alloc(len: usize) -> BlockBuffer {
        let data = alloc(len) as *mut u8;
        let mut i = 0;
        while i < len {
            ptr::write(data.add(i), 0u8);
            i += 1;
        }
        BlockBuffer { data: data, len: len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn read_byte(&self, off: usize) -> u8 {
        if off >= self.len {
            return 0;
        }
        unsafe { *self.data.add(off) }
    }

    pub fn write_byte(&mut self, off: usize, v: u8) {
        if off >= self.len {
            return;
        }
        unsafe {
            ptr::write(self.data.add(off), v);
        }
    }
}

pub struct Scheme {
    table: Mutex<FileTable>,
    open_count: AtomicUsize,
}

impl Scheme {
    pub fn open(&self, size: usize) -> usize {
        self.open_count.fetch_add(1);
        let mut table = self.table.lock().unwrap();
        table.allocate(size)
    }

    pub fn close(&self, slot: usize) {
        let mut table = self.table.lock().unwrap();
        table.release(slot);
        drop(table);
        self.open_count.fetch_sub(1);
    }

    pub fn read(&self, slot: usize, count: usize) -> Vec<u32> {
        let table = self.table.lock().unwrap();
        let mut out = Vec::new();
        for i in 0..count {
            out.push(table.block_at(slot, i));
        }
        out
    }
}

pub fn path_depth(path: &str) -> usize {
    let mut depth = 0;
    let mut saw_sep = false;
    for i in 0..16 {
        if i % 4 == 0 {
            saw_sep = true;
        }
        if saw_sep {
            depth += 1;
            saw_sep = false;
        }
    }
    depth
}
