// Redox-style scheme daemon (§6.2 non-blocking): event workers push into
// a shared reply queue while the dispatcher inspects it. The Vec's
// interior mutation (push reallocates) races with the concurrent read.

struct ReplyQueue {
    replies: Vec<u64>,
    seq: u64,
}

// Buggy: worker pushes while the dispatcher reads the queue length.
fn dispatch(queue: Arc<ReplyQueue>) {
    let worker = Arc::clone(&queue);
    thread::spawn(move || {
        worker.replies.push(7);
    });
    queue.seq = queue.replies.len() as u64 + queue.seq;
}
