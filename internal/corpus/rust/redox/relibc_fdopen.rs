// Figure 6 (Redox relibc): invalid free — assigning through a pointer to
// uninitialized memory drops the garbage previous value — and the fix.

pub struct FILE {
    buf: Vec<u8>,
}

pub unsafe fn _fdopen() {
    let f = alloc(size_of::<FILE>()) as *mut FILE;
    *f = FILE { buf: vec![0u8; 100] };
}

pub unsafe fn _fdopen_fixed() {
    let f = alloc(size_of::<FILE>()) as *mut FILE;
    ptr::write(f, FILE { buf: vec![0u8; 100] });
}
