// Detector-evaluation corpus: the four previously-unknown use-after-free
// bugs the paper's MIR detector found in Redox's relibc (issue #159 class).
// Each function below contains exactly one true use-after-free.

struct Tm { sec: i32, min: i32 }

impl Tm {
    fn new(t: i32) -> Tm { Tm { sec: t, min: 0 } }
}

// Bug 1: pointer into a block-scoped allocation escapes the block.
pub fn localtime(t: i32) {
    let p = {
        let tm = Box::new(Tm::new(t));
        tm.as_ptr()
    };
    unsafe {
        let sec = (*p).sec;
        report(sec);
    }
}

// Bug 2: the CString temporary dies at the end of the let statement, but
// its pointer is handed to an FFI call afterwards.
pub fn getpwnam(name: i32) {
    let name_ptr = CString::new(name).unwrap().as_ptr();
    unsafe {
        getpwnam_r(name_ptr);
    }
}

// Bug 3: a scratch buffer is freed when its scope ends; the resolved
// pointer is dereferenced after.
pub fn realpath(path: i32) -> u8 {
    let resolved = {
        let buf = vec![0u8; 4096];
        fill(path);
        buf.as_ptr()
    };
    unsafe { *resolved }
}

// Bug 4: a match arm builds a temporary message struct whose storage ends
// with the arm; the pointer outlives the match.
struct Msg { text: Vec<u8> }

impl Msg {
    fn new() -> Msg { Msg { text: vec![0u8; 64] } }
}

pub fn strerror(errno: i32) {
    let p = match errno {
        0 => ptr::null(),
        _ => Msg::new().as_ptr(),
    };
    unsafe {
        print_msg(p);
    }
}
