// Detector-evaluation corpus: three patterns that are safe in practice but
// that the use-after-free detector reports anyway — reproducing the
// paper's three false positives, which it attributes to its unoptimized
// (context-insensitive, flow-insensitive) inter-procedural analysis.

// FP 1: context-insensitivity. maybe_deref only touches the pointer when
// do_it is true, and this caller always passes false.
fn maybe_deref(p: *const u8, do_it: bool) -> u8 {
    if do_it {
        unsafe { return *p; }
    }
    0
}

pub fn fp_context() {
    let p = {
        let buf = vec![1u8];
        buf.as_ptr()
    };
    let v = maybe_deref(p, false);
    report(v);
}

// FP 2: flow-insensitive points-to. p is re-pointed at the live vector
// before the final dereference, but the analysis keeps the stale target.
pub fn fp_flow() {
    let a = vec![1u8];
    let mut p = a.as_ptr();
    {
        let b = vec![2u8];
        p = b.as_ptr();
        consume_ptr(p);
    }
    p = a.as_ptr();
    unsafe {
        let y = *p;
        report(y);
    }
}

// FP 3: path correlation. v is dropped only when c holds, and the
// dereference runs only when c does not hold; the two paths never overlap.
pub fn fp_path(c: bool) {
    let v = vec![1u8];
    let p = v.as_ptr();
    if c {
        drop(v);
    }
    if !c {
        unsafe {
            let x = *p;
            report(x);
        }
    }
}
