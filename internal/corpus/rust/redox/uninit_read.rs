// Table 2's unsafe->safe "Uninitialized" class: a buffer created in unsafe
// code is read by safe code before initialization.

pub unsafe fn read_garbage() -> u8 {
    let buf = alloc(16) as *mut u8;
    *buf
}

pub unsafe fn read_initialized() -> u8 {
    let buf = alloc(16) as *mut u8;
    ptr::write(buf, 7u8);
    *buf
}
