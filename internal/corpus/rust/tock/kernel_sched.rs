// App-scale corpus: a Tock-flavored cooperative kernel scheduler with
// MMIO-style unsafe register access kept behind checked interior-unsafe
// accessors. Intentionally bug-free.

pub enum ProcessState {
    Ready,
    Running,
    Yielded,
    Faulted,
}

pub struct Process {
    id: usize,
    state: ProcessState,
    budget: i32,
}

pub struct Kernel {
    processes: Vec<Process>,
    current: usize,
    ticks: AtomicUsize,
}

impl Kernel {
    pub fn new() -> Kernel {
        Kernel { processes: Vec::new(), current: 0, ticks: AtomicUsize::new() }
    }

    pub fn register(&mut self, budget: i32) -> usize {
        let id = self.processes.len();
        self.processes.push(Process { id: id, state: ProcessState::Ready, budget: budget });
        id
    }

    pub fn schedule(&mut self) -> Option<usize> {
        let n = self.processes.len();
        if n == 0 {
            return None;
        }
        let mut tried = 0;
        while tried < n {
            let idx = (self.current + tried) % n;
            let ready = match self.processes[idx].state {
                ProcessState::Ready => true,
                _ => false,
            };
            if ready {
                self.current = idx;
                self.processes[idx].state = ProcessState::Running;
                return Some(idx);
            }
            tried += 1;
        }
        None
    }

    pub fn yield_current(&mut self) {
        if self.current < self.processes.len() {
            self.processes[self.current].state = ProcessState::Yielded;
        }
    }

    pub fn fault(&mut self, id: usize) {
        if id < self.processes.len() {
            self.processes[id].state = ProcessState::Faulted;
        }
    }

    pub fn tick(&self) {
        self.ticks.fetch_add(1);
    }
}

pub struct SysTick {
    base: usize,
    reload: u32,
}

impl SysTick {
    // Checked interior unsafe: the register window is validated before
    // the raw access.
    pub fn read_count(&self) -> u32 {
        if self.base == 0 {
            return 0;
        }
        unsafe {
            let reg = self.base as *const u32;
            *reg
        }
    }

    pub fn arm(&self) {
        if self.base == 0 {
            return;
        }
        unsafe {
            let reg = self.base as *mut u32;
            ptr::write(reg, self.reload);
        }
    }
}

pub fn run_kernel(mut kernel: Kernel, slices: usize) -> usize {
    let mut scheduled = 0;
    for _ in 0..slices {
        match kernel.schedule() {
            Some(id) => {
                scheduled += 1;
                kernel.tick();
                if id % 3 == 0 {
                    kernel.yield_current();
                }
            }
            None => break,
        }
    }
    scheduled
}
