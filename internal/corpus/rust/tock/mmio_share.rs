// Tock's data-sharing shape (Table 4: both of its non-blocking bugs share
// OS/hardware resources): memory-mapped registers reached through raw
// addresses, with an unsynchronized read-modify-write.

struct UartRegisters {
    base: usize,
}

impl UartRegisters {
    fn control(&self) -> *mut u32 {
        self.base as *mut u32
    }

    // Racy: interrupt handler and main loop both do read-modify-write on
    // the same register with no critical section.
    fn enable_tx_racy(&self) {
        unsafe {
            let ctrl = self.control();
            let old = *ctrl;
            *ctrl = old | 1;
        }
    }

    // Fix shape: the update happens with interrupts masked.
    fn enable_tx_fixed(&self) {
        with_interrupts_disabled(self.base);
    }
}

fn with_interrupts_disabled(base: usize) {
    unsafe {
        let ctrl = base as *mut u32;
        let old = *ctrl;
        *ctrl = old | 1;
    }
}
