// §4 unsafe-usage corpus: a file dense in the unsafe forms the scanner
// classifies — raw pointer work, mutable statics, FFI reuse, performance
// shortcuts, and a consistency-only unsafe marker.

static mut TICKS: u32 = 0;

pub struct Register {
    addr: usize,
}

impl Register {
    // Raw pointer manipulation (memory operations: 66% of sampled usages).
    pub fn read_volatile(&self) -> u32 {
        unsafe {
            let p = self.addr as *const u32;
            *p
        }
    }

    pub fn write_volatile(&self, v: u32) {
        unsafe {
            let p = self.addr as *mut u32;
            *p = v;
        }
    }
}

// Mutable static access (cross-thread sharing purpose).
pub fn tick() {
    unsafe {
        TICKS += 1;
    }
}

// FFI reuse (calling existing C code: the 42% reuse purpose).
pub fn copy_frame(dst: i32, src: i32, len: usize) {
    unsafe {
        memcpy(dst, src, len);
    }
}

// Performance: skip the bounds check on the hot path.
pub fn sample_unchecked(samples: Vec<u32>, i: usize) -> u32 {
    unsafe { *samples.get_unchecked(i) }
}

// An unsafe fn that performs real unsafe work.
pub unsafe fn mmio_write(addr: usize, v: u32) {
    let p = addr as *mut u32;
    *p = v;
}

// A consistency-only unsafe marker: nothing in the body needs it (the 5%
// removable class; kept because the sibling platform's version is unsafe).
pub unsafe fn flush_cache() {
    let mut total = 0;
    total += 1;
    report(total);
}

// An unsafe trait and its unsafe impl.
pub unsafe trait DmaSafe {}

struct DmaBuffer {
    data: Vec<u8>,
}

unsafe impl DmaSafe for DmaBuffer {}
