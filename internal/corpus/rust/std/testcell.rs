// Figure 4 (paper's running example): an interior-mutability cell whose
// set() writes through a pointer cast of an immutable borrow, on a type
// declared Sync — unsynchronized interior mutability.

struct TestCell {
    value: i32,
}

unsafe impl Sync for TestCell {}

impl TestCell {
    fn set(&self, i: i32) {
        let p = &self.value as *const i32 as *mut i32;
        unsafe { *p = i };
    }
}
