// §4.3 corpus: interior-unsafe functions with and without explicit
// precondition checks, and the constructor-labelling idiom
// (String::from_utf8_unchecked's shape).

pub struct Buffer {
    data: Vec<u8>,
    len: usize,
}

impl Buffer {
    // Interior unsafe WITH an explicit check: the index is validated
    // before the unchecked access.
    pub fn get(&self, i: usize) -> u8 {
        if i >= self.len {
            return 0;
        }
        unsafe { *self.data.get_unchecked(i) }
    }

    // Interior unsafe WITHOUT a check: safety rests on the caller's
    // environment (the 58% class).
    pub fn get_fast(&self, i: usize) -> u8 {
        unsafe { *self.data.get_unchecked(i) }
    }

    // Interior unsafe guarded by an assert.
    pub fn get_checked(&self, i: usize) -> u8 {
        assert!(i < self.len);
        unsafe { *self.data.get_unchecked(i) }
    }
}

// Constructor labelling: the body is entirely safe, but the constructor
// is marked unsafe because later methods rely on the invariant the caller
// must establish (valid UTF-8 here).
pub struct Utf8String {
    bytes: Vec<u8>,
}

impl Utf8String {
    pub unsafe fn from_utf8_unchecked(bytes: Vec<u8>) -> Utf8String {
        Utf8String { bytes: bytes }
    }

    pub fn char_count(&self) -> usize {
        self.bytes.len()
    }
}

// A badly encapsulated interior-unsafe function (one of the 19): the
// parameter flows into memory access without any validation.
pub fn load_at(base: usize, off: usize) -> u8 {
    unsafe {
        let p = (base + off) as *const u8;
        *p
    }
}
