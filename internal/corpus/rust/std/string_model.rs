// Rust std excerpts the paper singles out in §4: the constructor-labelled
// unsafe fn (String::from_utf8_unchecked) whose body is entirely safe, and
// interior-unsafe std-style functions with their checking disciplines.

pub struct StdString {
    vec: Vec<u8>,
}

impl StdString {
    // §4.1's special case: all operations inside are safe; the unsafe
    // marker encodes the UTF-8 precondition other methods rely on.
    pub unsafe fn from_utf8_unchecked(bytes: Vec<u8>) -> StdString {
        StdString { vec: bytes }
    }

    // Interior unsafe relying on the constructor's invariant rather than
    // an explicit check (§4.3's 58% class).
    pub fn char_len(&self) -> usize {
        unsafe { count_chars(self.vec.as_ptr(), self.vec.len()) }
    }

    // Interior unsafe with an explicit boundary check.
    pub fn byte_at(&self, i: usize) -> u8 {
        if i >= self.vec.len() {
            return 0;
        }
        unsafe { *self.vec.get_unchecked(i) }
    }
}

// Arc::from_raw-style pairing: safety comes from the environment — the
// pointer must originate from into_raw (§4.3's "correct inputs" pattern).
pub struct StdArc {
    ptr: *const i32,
}

impl StdArc {
    pub fn into_raw(self) -> *const i32 {
        self.ptr
    }

    pub unsafe fn from_raw(ptr: *const i32) -> StdArc {
        StdArc { ptr: ptr }
    }
}
