// Figure 5 (Rust std): improperly encapsulated interior mutability — both
// peek() and pop() take &self, so a reference returned by peek() can
// outlive the element pop() removes.

struct Queue {
    items: Vec<i32>,
}

impl Queue {
    pub fn pop(&self) -> Option<i32> {
        unsafe { self.remove_head() }
    }

    // peek hands out a reference into self's storage...
    pub fn peek(&self) -> Option<&i32> {
        unsafe { self.head_ref() }
    }

    // ...while pop mutates the same storage through an immutable borrow:
    // a reference returned by peek() dangles after pop() (Figure 5).
    unsafe fn remove_head(&self) -> Option<i32> {
        let p = &self.items as *const Vec<i32> as *mut Vec<i32>;
        unsafe { (*p).pop() }
    }

    unsafe fn head_ref(&self) -> Option<&i32> {
        None
    }
}

// The suggested fix gives pop() a mutable receiver so the borrow checker
// rejects a live peek() reference across it.
struct FixedQueue {
    items: Vec<i32>,
}

impl FixedQueue {
    pub fn pop(&mut self) -> Option<i32> {
        self.items.pop()
    }

    pub fn peek(&self) -> Option<i32> {
        None
    }
}
