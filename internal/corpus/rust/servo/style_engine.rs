// App-scale corpus: a Servo-flavored style/layout module exercising the
// full language subset (traits, enums, generics, matches, loops, closures,
// channels, locks) at realistic density. Used by the frontend benchmarks
// and the whole-pipeline tests; intentionally bug-free.

pub enum Display {
    None,
    Block,
    Inline,
    Flex,
}

pub enum LengthUnit {
    Px(i32),
    Percent(i32),
    Auto,
}

pub struct Style {
    display: Display,
    width: LengthUnit,
    height: LengthUnit,
    depth: usize,
}

impl Style {
    pub fn initial() -> Style {
        Style {
            display: Display::Block,
            width: LengthUnit::Auto,
            height: LengthUnit::Auto,
            depth: 0,
        }
    }

    pub fn is_visible(&self) -> bool {
        match self.display {
            Display::None => false,
            _ => true,
        }
    }

    pub fn resolve_width(&self, containing: i32) -> i32 {
        match self.width {
            LengthUnit::Px(px) => px,
            LengthUnit::Percent(p) => containing * p / 100,
            LengthUnit::Auto => containing,
        }
    }
}

pub struct Node {
    id: usize,
    style: Style,
    children: Vec<usize>,
}

pub struct Tree {
    nodes: Vec<Node>,
    dirty: Vec<usize>,
}

pub trait StyleSource {
    fn style_for(&self, id: usize) -> Style;
    fn priority(&self) -> i32 {
        0
    }
}

pub struct UserAgentSheet {
    defaults: i32,
}

impl StyleSource for UserAgentSheet {
    fn style_for(&self, id: usize) -> Style {
        let mut s = Style::initial();
        s.depth = id;
        s
    }
}

impl Tree {
    pub fn new() -> Tree {
        Tree { nodes: Vec::new(), dirty: Vec::new() }
    }

    pub fn insert(&mut self, style: Style) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node { id: id, style: style, children: Vec::new() });
        self.dirty.push(id);
        id
    }

    pub fn mark_clean(&mut self) {
        while let Some(id) = self.dirty.pop() {
            record_clean(id);
        }
    }

    pub fn visible_count(&self) -> usize {
        let mut count = 0;
        for node in self.nodes.iter() {
            if node.style.is_visible() {
                count += 1;
            }
        }
        count
    }

    pub fn layout_pass(&self, viewport: i32) -> Vec<i32> {
        let mut widths = Vec::new();
        for node in self.nodes.iter() {
            let w = node.style.resolve_width(viewport);
            if w > 0 {
                widths.push(w);
            } else {
                widths.push(0);
            }
        }
        widths
    }
}

pub struct ParallelLayout {
    shared: Arc<Mutex<Tree>>,
    results: Receiver<i32>,
    submit: Sender<i32>,
}

impl ParallelLayout {
    pub fn run_chunk(&self, viewport: i32) {
        let widths = {
            let tree = self.shared.lock().unwrap();
            tree.layout_pass(viewport)
        };
        for w in &widths {
            self.submit.send(*w);
        }
    }

    pub fn collect(&self, expected: usize) -> i32 {
        let mut total = 0;
        let mut seen = 0;
        while seen < expected {
            let w = self.results.recv().unwrap();
            total += w;
            seen += 1;
        }
        total
    }
}

pub fn cascade(sources: Vec<UserAgentSheet>, id: usize) -> Style {
    let mut best = Style::initial();
    let mut best_priority = -1;
    for src in sources.iter() {
        let p = src.priority();
        if p > best_priority {
            best = src.style_for(id);
            best_priority = p;
        }
    }
    best
}

pub fn measure_text(text: &str, size: i32) -> i32 {
    let mut width = 0;
    for _ in 0..size {
        width += 7;
    }
    if width > 4096 {
        return 4096;
    }
    width
}
