// Figure 7 (RustSec advisory): use-after-free caused by a temporary whose
// lifetime ends at the match arm, plus the committed fix.

struct BioSlice { buf: Vec<u8> }

impl BioSlice {
    fn new(data: i32) -> BioSlice { BioSlice { buf: vec![0u8; 32] } }
}

pub fn sign(data: Option<i32>) {
    let p = match data {
        Some(data) => BioSlice::new(data).as_ptr(),
        None => ptr::null_mut(),
    };
    unsafe {
        let cms = cvt_p(CMS_sign(p));
    }
}

pub fn sign_fixed(data: Option<i32>) {
    let bio = match data {
        Some(data) => Some(BioSlice::new(data)),
        None => None,
    };
    let p = bio.as_ptr();
    unsafe {
        let cms = cvt_p(CMS_sign(p));
    }
}
