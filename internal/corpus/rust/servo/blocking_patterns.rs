// §6.1 blocking-bug patterns beyond double locks: Condvar with a missing
// notify, a channel whose only sender is blocked, and a recursive
// call_once — each paired with its fix shape.

struct Worker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Worker {
    // Condvar bug: no Worker method ever notifies self.cv; the waiter
    // blocks forever.
    fn wait_forever(&self) {
        let mut g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
}

// Fix shape on its own type: the producer notifies on every call, so the
// waiter always has a reachable signaller.
struct WorkerFixed {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl WorkerFixed {
    fn wait_ready(&self) {
        let mut g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }

    fn finish(&self) {
        let mut g = self.ready.lock().unwrap();
        *g = true;
        drop(g);
        self.cv.notify_all();
    }
}

// Channel bug: the receiver holds the lock its sender needs.
struct Pipeline {
    state: Mutex<i32>,
}

impl Pipeline {
    fn recv_while_locked(&self, rx: Receiver<i32>) {
        let g = self.state.lock().unwrap();
        let item = rx.recv().unwrap();
        use_both(*g, item);
    }

    fn sender_side(&self, tx: Sender<i32>) {
        let g = self.state.lock().unwrap();
        tx.send(*g);
    }
}

// Once bug: the init closure re-enters call_once on the same Once through
// a helper.
fn recursive_once(once: Once) {
    once.call_once(|| {
        helper_init(once);
    });
}

fn helper_init(once: Once) {
    once.call_once(|| {
        do_init();
    });
}
