// §6.1 blocking-bug patterns beyond double locks: Condvar with a missing
// notify, a channel whose only sender is blocked, and a recursive
// call_once — each paired with its fix shape.

struct Worker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Worker {
    // Condvar bug: nobody ever calls notify; the waiter blocks forever.
    fn wait_forever(&self) {
        let mut g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }

    fn wait_fixed(&self) {
        let mut g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }

    fn producer_fixed(&self) {
        let mut g = self.ready.lock().unwrap();
        self.cv.notify_all();
    }
}

// Channel bug: the receiver holds the lock its sender needs.
struct Pipeline {
    state: Mutex<i32>,
}

impl Pipeline {
    fn recv_while_locked(&self, rx: Receiver<i32>) {
        let g = self.state.lock().unwrap();
        let item = rx.recv().unwrap();
        use_both(*g, item);
    }

    fn sender_side(&self, tx: Sender<i32>) {
        let g = self.state.lock().unwrap();
        tx.send(*g);
    }
}

// Once bug: the init closure re-enters call_once on the same Once.
fn recursive_once(once: Once) {
    once.call_once(|| {
        helper_init();
    });
}

fn helper_init() {
    do_init();
}
