// Table 2's dominant memory-bug shape (17 of 21 buffer overflows): the
// index is computed in safe code, the out-of-bounds access happens in
// unsafe code.

struct Frame {
    data: Vec<u8>,
    width: usize,
}

impl Frame {
    // The row*width+col arithmetic can exceed data's length; the unsafe
    // access skips the bounds check that would catch it.
    pub fn pixel_unchecked(&self, row: usize, col: usize) -> u8 {
        let idx = row * self.width + col;
        unsafe { *self.data.get_unchecked(idx) }
    }

    // The checked fix.
    pub fn pixel(&self, row: usize, col: usize) -> u8 {
        let idx = row * self.width + col;
        if idx >= self.data.len() {
            return 0;
        }
        unsafe { *self.data.get_unchecked(idx) }
    }
}
