// Servo's channel blocking bugs (Table 3: 5 of its 13 blocking bugs are
// channel bugs): a paint thread waiting for a message its script thread
// can never send, the orphaned-receive shape, and the all-ends-waiting
// shape.

struct ScriptThread {
    to_paint: Sender<i32>,
    from_paint: Receiver<i32>,
    state: Mutex<i32>,
}

impl ScriptThread {
    // Bug shape: recv() while holding the lock the sender needs.
    fn sync_reflow(&self) {
        let g = self.state.lock().unwrap();
        let layout = self.from_paint.recv().unwrap();
        apply(*g, layout);
    }

    // The paint side blocks on the same lock before it can send.
    fn paint_reply(&self) {
        let g = self.state.lock().unwrap();
        self.to_paint.send(*g);
    }

    // Fix: release the lock before blocking on the channel.
    fn sync_reflow_fixed(&self) {
        let snapshot = { let g = self.state.lock().unwrap(); *g };
        let layout = self.from_paint.recv().unwrap();
        apply(snapshot, layout);
    }
}

// Orphaned receive: the only sender half is dropped before the recv, so
// the channel can never produce a message.
fn poll_orphaned() -> i32 {
    let (tx, rx) = mpsc::channel();
    drop(tx);
    let v = rx.recv().unwrap();
    v
}

// Negative control: a spawned thread owns a live sender half.
fn poll_with_sender() -> i32 {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        tx.send(7);
    });
    let v = rx.recv().unwrap();
    v
}

// All ends waiting: both workers pull before either pushes. The
// coordinator cross-wires the channel halves, so each worker's reply is
// stuck behind the other worker's recv and no message is ever in
// flight.
fn worker_a(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 1);
}

fn worker_b(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 2);
}

fn spawn_pipeline() {
    let (tx_a, rx_a) = mpsc::channel();
    let (tx_b, rx_b) = mpsc::channel();
    thread::spawn(move || {
        worker_a(rx_a, tx_b);
    });
    thread::spawn(move || {
        worker_b(rx_b, tx_a);
    });
}

// Negative control for the all-ends-waiting rule: the coordinator seeds
// the ring with a message before spawning, so the first recv completes
// and the ring drains.
fn worker_c(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 1);
}

fn worker_d(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 2);
}

fn fp_seeded_pipeline() {
    let (tx_c, rx_c) = mpsc::channel();
    let (tx_d, rx_d) = mpsc::channel();
    tx_c.send(0);
    thread::spawn(move || {
        worker_c(rx_c, tx_d);
    });
    thread::spawn(move || {
        worker_d(rx_d, tx_c);
    });
}
