// Servo-style shared layout state (§6.2 non-blocking): the script thread
// hands the layout worker an Arc to the document stats and keeps mutating
// them while the worker runs. The studied Servo bugs in this class share a
// flag or counter across the script/layout boundary without a lock.

struct DocStats {
    dirty_nodes: u64,
    reflow_count: u64,
}

// Buggy: the worker and the spawner both write dirty_nodes with no
// synchronization.
fn spawn_reflow(stats: Arc<DocStats>) {
    let worker = Arc::clone(&stats);
    thread::spawn(move || {
        worker.reflow_count += 1;
        worker.dirty_nodes = 0;
    });
    stats.dirty_nodes += 1;
}

// The committed fix: both sides take the document mutex.
fn spawn_reflow_fixed(stats: Arc<Mutex<DocStats>>) {
    let worker = Arc::clone(&stats);
    thread::spawn(move || {
        let mut s = worker.lock().unwrap();
        s.reflow_count += 1;
        s.dirty_nodes = 0;
    });
    let mut s = stats.lock().unwrap();
    s.dirty_nodes += 1;
}
