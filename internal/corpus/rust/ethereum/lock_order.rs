// §6.1 pattern: conflicting lock orders (7 of the 38 Mutex/RwLock
// blocking bugs). path_a and path_b acquire the same two locks in
// opposite orders; two threads interleaving them deadlock.

struct Ledger {
    accounts: Mutex<i32>,
    journal: Mutex<i32>,
}

impl Ledger {
    fn path_a(&self) {
        let a = self.accounts.lock().unwrap();
        let j = self.journal.lock().unwrap();
        combine(*a, *j);
    }

    fn path_b(&self) {
        let j = self.journal.lock().unwrap();
        let a = self.accounts.lock().unwrap();
        combine(*a, *j);
    }

    // The fix orders acquisitions consistently.
    fn path_b_fixed(&self) {
        let a = self.accounts.lock().unwrap();
        let j = self.journal.lock().unwrap();
        combine(*a, *j);
    }
}
