// App-scale corpus: a parity-ethereum-flavored mining pipeline with the
// lock discipline its fixed code uses — statement-bound guards, explicit
// drops before blocking operations, and consistent lock ordering.
// Intentionally bug-free.

pub enum SealOutcome {
    Sealed(i32),
    Retry,
    Abandon,
}

pub struct ChainState {
    best_block: i32,
    difficulty: i32,
}

pub struct WorkQueue {
    pending: Vec<i32>,
    accepted: usize,
}

pub struct MinerService {
    chain: RwLock<ChainState>,
    queue: Mutex<WorkQueue>,
    sealing: AtomicBool,
    results: Sender<i32>,
}

impl MinerService {
    pub fn best_block(&self) -> i32 {
        let chain = self.chain.read().unwrap();
        chain.best_block
    }

    pub fn submit_work(&self, nonce: i32) -> SealOutcome {
        let difficulty = {
            let chain = self.chain.read().unwrap();
            chain.difficulty
        };
        if nonce % 7 == difficulty % 7 {
            let mut queue = self.queue.lock().unwrap();
            queue.pending.push(nonce);
            queue.accepted += 1;
            drop(queue);
            self.results.send(nonce);
            return SealOutcome::Sealed(nonce);
        }
        if nonce > 0 {
            SealOutcome::Retry
        } else {
            SealOutcome::Abandon
        }
    }

    pub fn advance_chain(&self, new_block: i32) {
        let mut chain = self.chain.write().unwrap();
        if new_block > chain.best_block {
            chain.best_block = new_block;
            chain.difficulty += 1;
        }
    }

    pub fn drain_queue(&self) -> Vec<i32> {
        let mut queue = self.queue.lock().unwrap();
        let mut out = Vec::new();
        while let Some(nonce) = queue.pending.pop() {
            out.push(nonce);
        }
        out
    }

    // Consistent order: chain before queue, everywhere.
    pub fn snapshot(&self) -> (i32, usize) {
        let chain = self.chain.read().unwrap();
        let queue = self.queue.lock().unwrap();
        (chain.best_block, queue.accepted)
    }

    pub fn reorg(&self, target: i32) {
        let mut chain = self.chain.write().unwrap();
        let mut queue = self.queue.lock().unwrap();
        chain.best_block = target;
        queue.pending = Vec::new();
    }
}

pub struct SealLoop {
    service: Arc<MinerService>,
    rounds: usize,
}

impl SealLoop {
    pub fn run(&self) -> usize {
        let mut sealed = 0;
        for round in 0..self.rounds {
            let base = self.service.best_block();
            match self.service.submit_work(base + round as i32) {
                SealOutcome::Sealed(n) => {
                    sealed += 1;
                    record_seal(n);
                }
                SealOutcome::Retry => continue,
                SealOutcome::Abandon => break,
            }
        }
        sealed
    }
}

pub fn spawn_workers(service: Arc<MinerService>, n: usize) {
    for i in 0..n {
        let svc = Arc::clone(&service);
        thread::spawn(move || {
            let loop_ctl = SealLoop { service: svc, rounds: 16 };
            loop_ctl.run();
        });
    }
}

pub fn difficulty_curve(height: i32) -> i32 {
    let mut d = 1;
    let mut h = height;
    while h > 0 {
        d = d * 2;
        if d > 1024 {
            return 1024;
        }
        h -= 100;
    }
    d
}
