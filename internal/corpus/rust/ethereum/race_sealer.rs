// OpenEthereum-style sealing pipeline (§6.2 non-blocking): the miner
// shares its pending seal state with sealer threads via Arc. The buggy
// path reads the attempt counter the sealer is concurrently incrementing,
// without the sealing lock.

struct SealState {
    nonce_floor: u64,
    attempts: u64,
}

// Buggy: sealer writes attempts while the miner reads it post-spawn.
fn push_work(state: Arc<SealState>, rounds: u64) {
    let sealer = Arc::clone(&state);
    thread::spawn(move || {
        let mut n = 0;
        while n < rounds {
            sealer.attempts += 1;
            n += 1;
        }
    });
    state.nonce_floor = state.attempts + 1;
}

// The committed fix: seal state moves behind a mutex.
fn push_work_fixed(state: Arc<Mutex<SealState>>, rounds: u64) {
    let sealer = Arc::clone(&state);
    thread::spawn(move || {
        let mut n = 0;
        while n < rounds {
            let mut s = sealer.lock().unwrap();
            s.attempts += 1;
            n += 1;
        }
    });
    let mut s = state.lock().unwrap();
    s.nonce_floor = s.attempts + 1;
}
