// Figure 9 (parity-ethereum): non-atomic check-then-act on an atomic
// field of a Sync type, and the compare_and_swap fix.

struct AuthorityRound {
    proposed: AtomicBool,
}

unsafe impl Sync for AuthorityRound {}

enum Seal {
    None,
    Regular(i32),
}

impl AuthorityRound {
    fn generate_seal(&self) -> Seal {
        if self.proposed.load() {
            return Seal::None;
        }
        self.proposed.store(true);
        return Seal::Regular(1);
    }
}

struct AuthorityRoundFixed {
    proposed: AtomicBool,
}

unsafe impl Sync for AuthorityRoundFixed {}

impl AuthorityRoundFixed {
    fn generate_seal(&self) -> Seal {
        if !self.proposed.compare_and_swap(false, true) {
            return Seal::Regular(1);
        }
        return Seal::None;
    }
}
