// Ethereum's Condvar blocking bugs (Table 3: 6 of them): the
// missing-notify shape and a corrected producer/consumer pair.

struct Miner {
    sealing: Mutex<bool>,
    cv: Condvar,
}

impl Miner {
    // Bug: the only notify path is behind a condition that the waiter
    // itself controls, so the waiter can sleep forever.
    fn wait_for_seal(&self) {
        let mut g = self.sealing.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }

    fn maybe_notify(&self, sealed: bool) {
        if sealed {
            self.cv.notify_all();
        }
    }
}

// Fixed pair on its own type: every state change notifies, so the waiter
// always has a reachable signaller. Negative control for the blocking
// detector's lost-signal rule.
struct Sealer {
    sealing: Mutex<bool>,
    done: Condvar,
}

impl Sealer {
    fn await_seal(&self) {
        let mut g = self.sealing.lock().unwrap();
        let g2 = self.done.wait(g);
        consume(g2);
    }

    fn finish_seal(&self) {
        let mut g = self.sealing.lock().unwrap();
        *g = true;
        drop(g);
        self.done.notify_all();
    }
}
