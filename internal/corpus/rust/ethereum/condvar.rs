// Ethereum's Condvar blocking bugs (Table 3: 6 of them): the
// missing-notify shape and a corrected producer/consumer pair.

struct Miner {
    sealing: Mutex<bool>,
    cv: Condvar,
}

impl Miner {
    // Bug: the only notify path is behind a condition that the waiter
    // itself controls, so the waiter can sleep forever.
    fn wait_for_seal(&self) {
        let mut g = self.sealing.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }

    fn maybe_notify(&self, sealed: bool) {
        if sealed {
            self.cv.notify_all();
        }
    }
}

// Param-rooted variant of the same bug: the wait lives in a free helper
// that receives the condvar, and the only notify on the caller's condvar
// is behind a condition. The caller-side identity propagates into the
// helper's wait through the summary translation.
struct Relay {
    armed: Mutex<bool>,
    cv: Condvar,
}

impl Relay {
    fn block_until_armed(&self) {
        wait_armed(self.armed, self.cv);
    }

    fn maybe_wake(&self, go: bool) {
        if go {
            self.cv.notify_all();
        }
    }
}

fn wait_armed(m: Mutex<bool>, cv: Condvar) {
    let g = m.lock().unwrap();
    let g2 = cv.wait(g);
    consume(g2);
}

// Negative control for the propagated pass: the same helper shape, but
// the owner's notify is unconditional and guaranteed.
struct RelayFixed {
    armed: Mutex<bool>,
    cv: Condvar,
}

impl RelayFixed {
    fn block_until_armed(&self) {
        wait_armed_fixed(self.armed, self.cv);
    }

    fn wake(&self) {
        self.cv.notify_all();
    }
}

fn wait_armed_fixed(m: Mutex<bool>, cv: Condvar) {
    let g = m.lock().unwrap();
    let g2 = cv.wait(g);
    consume(g2);
}

// Fixed pair on its own type: every state change notifies, so the waiter
// always has a reachable signaller. Negative control for the blocking
// detector's lost-signal rule.
struct Sealer {
    sealing: Mutex<bool>,
    done: Condvar,
}

impl Sealer {
    fn await_seal(&self) {
        let mut g = self.sealing.lock().unwrap();
        let g2 = self.done.wait(g);
        consume(g2);
    }

    fn finish_seal(&self) {
        let mut g = self.sealing.lock().unwrap();
        *g = true;
        drop(g);
        self.done.notify_all();
    }
}
