// Detector-evaluation corpus: the six previously-unknown double-lock bugs
// the paper's detector found (parity-ethereum PRs #11172 and #11175 and
// issue #11176), one per method below, plus correctly-written variants
// that must stay clean (the paper reports zero false positives).

struct Block { number: i32 }

struct Engine {
    state: Mutex<Block>,
    queue: Mutex<Block>,
    chain: RwLock<Block>,
}

impl Engine {
    // Bug 1: the match scrutinee's read guard lives until the end of the
    // match; the write() in the arm deadlocks (the Figure 8 shape).
    fn update_sealing(&self) {
        match validate(self.chain.read().unwrap().number) {
            Ok(n) => {
                let mut b = self.chain.write().unwrap();
                b.number = n;
            }
            Err(e) => {}
        };
    }

    // Bug 2: the if-condition's guard is held through both branches.
    fn step(&self) {
        if self.state.lock().unwrap().number > 0 {
            let mut g = self.state.lock().unwrap();
            g.number = 0;
        }
    }

    // Bug 3: plain sequential re-acquisition with the first guard still
    // bound.
    fn reseal(&self) {
        let g = self.state.lock().unwrap();
        let h = self.state.lock().unwrap();
        use_both(g.number, h.number);
    }

    // Bug 4: inter-procedural — the callee locks self.queue internally
    // while the caller still holds it.
    fn queue_len(&self) -> i32 {
        let q = self.queue.lock().unwrap();
        q.number
    }

    fn enqueue(&self) {
        let g = self.queue.lock().unwrap();
        let n = self.queue_len();
        report(n);
    }

    // Bug 5: RwLock upgrade attempt — write() while the read guard lives.
    fn try_upgrade(&self) {
        let r = self.chain.read().unwrap();
        if r.number > 0 {
            let mut w = self.chain.write().unwrap();
            w.number = 0;
        }
    }

    // Bug 6: a guard acquired before a loop and re-acquired inside it.
    fn drain(&self) {
        let g = self.queue.lock().unwrap();
        for i in 0..10 {
            let h = self.queue.lock().unwrap();
            report(h.number);
        }
    }

    // Clean 1: the fix for bug 1 — bind the scrutinee to a let first.
    fn update_sealing_fixed(&self) {
        let result = validate(self.chain.read().unwrap().number);
        match result {
            Ok(n) => {
                let mut b = self.chain.write().unwrap();
                b.number = n;
            }
            Err(e) => {}
        };
    }

    // Clean 2: explicit drop ends the first critical section.
    fn reseal_fixed(&self) {
        let g = self.state.lock().unwrap();
        let n = g.number;
        drop(g);
        let h = self.state.lock().unwrap();
        use_both(n, h.number);
    }

    // Clean 3: different locks may nest.
    fn transfer(&self) {
        let g = self.state.lock().unwrap();
        let h = self.queue.lock().unwrap();
        use_both(g.number, h.number);
    }
}

fn validate(n: i32) -> Result<i32, i32> {
    if n > 0 { Ok(n) } else { Err(n) }
}
