// The libraries' global-sharing bug shape (Table 4: one Global entry for
// the studied libraries; modeled on lazy_static): unsynchronized lazy
// initialization of a static mut, plus the Once-based fix.

static mut CONFIG: i32 = 0;
static mut INITIALIZED: bool = false;

// Racy: two threads can both observe INITIALIZED == false.
pub fn config_racy() -> i32 {
    unsafe {
        if !INITIALIZED {
            CONFIG = load_config();
            INITIALIZED = true;
        }
        CONFIG
    }
}

// Fix shape: the initialization is guarded by Once.
pub fn config_fixed(once: Once) -> i32 {
    once.call_once(|| {
        unsafe {
            CONFIG = load_config();
        }
    });
    unsafe { CONFIG }
}

// Bug: the initializer closure is bound to a variable and handed through
// a helper; the helper runs it under call_once on the same cell the
// closure re-enters — a self-deadlock the closure-binding resolution
// now follows through the parameter.
pub fn deep_init(once: Once) -> i32 {
    let f = || {
        once.call_once(|| {
            unsafe {
                CONFIG = load_config();
            }
        });
    };
    run_guarded(once, f);
    unsafe { CONFIG }
}

fn run_guarded(once: Once, f: F) {
    once.call_once(f);
}

// Negative control: the closure initializes a different cell than the
// one the helper guards, so nothing re-enters.
pub fn fp_deep_init(first: Once, second: Once) -> i32 {
    let f = || {
        second.call_once(|| {
            unsafe {
                CONFIG = load_config();
            }
        });
    };
    run_guarded(first, f);
    unsafe { CONFIG }
}

// Negative control for the Once-reentrancy rule: two distinct Once cells
// layered through a helper; neither initializer re-enters its own cell.
pub fn layered_init(first: Once, second: Once) -> i32 {
    first.call_once(|| {
        second_init(second);
    });
    unsafe { CONFIG }
}

fn second_init(second: Once) {
    second.call_once(|| {
        unsafe {
            CONFIG = load_config();
        }
    });
}

fn load_config() -> i32 {
    42
}
