// The libraries' global-sharing bug shape (Table 4: one Global entry for
// the studied libraries; modeled on lazy_static): unsynchronized lazy
// initialization of a static mut, plus the Once-based fix.

static mut CONFIG: i32 = 0;
static mut INITIALIZED: bool = false;

// Racy: two threads can both observe INITIALIZED == false.
pub fn config_racy() -> i32 {
    unsafe {
        if !INITIALIZED {
            CONFIG = load_config();
            INITIALIZED = true;
        }
        CONFIG
    }
}

// Fix shape: the initialization is guarded by Once.
pub fn config_fixed(once: Once) -> i32 {
    once.call_once(|| {
        unsafe {
            CONFIG = load_config();
        }
    });
    unsafe { CONFIG }
}

// Negative control for the Once-reentrancy rule: two distinct Once cells
// layered through a helper; neither initializer re-enters its own cell.
pub fn layered_init(first: Once, second: Once) -> i32 {
    first.call_once(|| {
        second_init(second);
    });
    unsafe { CONFIG }
}

fn second_init(second: Once) {
    second.call_once(|| {
        unsafe {
            CONFIG = load_config();
        }
    });
}

fn load_config() -> i32 {
    42
}
