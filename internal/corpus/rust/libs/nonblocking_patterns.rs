// §6.2 non-blocking patterns: an atomicity violation under a Mutex (lock
// released between check and act), an order violation, and the RefCell
// double-borrow panic the paper counts under library misuse.

struct Counter {
    n: Mutex<i32>,
}

impl Counter {
    // Atomicity violation: the value observed under the first lock is
    // stale by the time the second critical section runs.
    fn increment_racy(&self) {
        let current = { let g = self.n.lock().unwrap(); *g };
        let next = current + 1;
        let mut g = self.n.lock().unwrap();
        *g = next;
    }

    // Fix: one critical section.
    fn increment_fixed(&self) {
        let mut g = self.n.lock().unwrap();
        *g = *g + 1;
    }
}

// Order violation: the flag is published before the payload is written.
struct Publisher {
    ready: AtomicBool,
    payload: Mutex<i32>,
}

impl Publisher {
    fn publish_racy(&self, v: i32) {
        self.ready.store(true);
        let mut g = self.payload.lock().unwrap();
        *g = v;
    }

    fn publish_fixed(&self, v: i32) {
        let mut g = self.payload.lock().unwrap();
        *g = v;
        drop(g);
        self.ready.store(true);
    }
}

// RefCell misuse: two simultaneous borrow_mut()s panic at runtime (4 of
// the paper's 7 library-misuse bugs).
struct Cache {
    cells: RefCell<i32>,
}

impl Cache {
    fn double_borrow(&self) {
        let a = self.cells.borrow_mut();
        let b = self.cells.borrow_mut();
        use_both(*a, *b);
    }
}
