// Negative control cases for the race detector, modeled on the paper's
// §6.2 fix strategies: synchronized or single-threaded sharing shapes.
// Every function here must stay silent.

struct Board {
    cells: u64,
}

struct Journal {
    lines: u64,
}

// Fix pattern 1: both threads take the mutex around the access.
fn guarded_update(m: Arc<Mutex<Board>>) {
    let h = Arc::clone(&m);
    thread::spawn(move || {
        let mut g = h.lock().unwrap();
        g.cells += 1;
    });
    let mut g2 = m.lock().unwrap();
    g2.cells += 1;
}

// Fix pattern 2: Rc stays on one thread; aliasing alone is no race.
fn single_thread_alias(j: Rc<Journal>) {
    let alias = Rc::clone(&j);
    alias.lines += 1;
    j.lines += 1;
}

// Fix pattern 3: the guard moves into the spawned thread, carrying
// ownership of the locked data across the spawn boundary.
fn guard_handoff(m: Arc<Mutex<Journal>>) {
    let g = m.lock().unwrap();
    thread::spawn(move || {
        g.lines += 1;
    });
}

// Fix pattern 1, field-stored variant: the mutex lives inside a shared
// struct, so the lock() receiver is a projected path — the acquire's own
// read of that field must not count as an unguarded access.
fn guarded_field_update(s: Arc<Scoreboard>) {
    let h = Arc::clone(&s);
    thread::spawn(move || {
        let mut g = h.tally.lock().unwrap();
        *g += 1;
    });
    let mut g2 = s.tally.lock().unwrap();
    *g2 += 1;
}

struct Scoreboard {
    tally: Mutex<u64>,
}

// Fix pattern 4: the counter becomes atomic; fetch_add synchronizes.
fn atomic_counter(b: Arc<BoardAtomic>) {
    let h = Arc::clone(&b);
    thread::spawn(move || {
        h.cells.fetch_add(1, Ordering::SeqCst);
    });
    b.cells.fetch_add(1, Ordering::SeqCst);
}

struct BoardAtomic {
    cells: AtomicU64,
}
