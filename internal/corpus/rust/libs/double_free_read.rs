// §5.1 double free: ptr::read duplicates ownership; both owners drop.

struct Holder {
    b: Box<i32>,
}

pub fn duplicate_owner(t1: Holder) {
    let t2 = unsafe { ptr::read(&t1) };
    use_holder(&t2);
}

// The safe transfer: a move leaves a single owner.
pub fn move_owner(t1: Holder) {
    let t2 = t1;
    use_holder(&t2);
}

// The unsafe-but-correct variant forgets the original.
pub fn duplicate_then_forget(t1: Holder) {
    let t2 = unsafe { ptr::read(&t1) };
    mem::forget(t1);
    use_holder(&t2);
}
