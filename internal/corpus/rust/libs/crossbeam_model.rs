// A Crossbeam-flavored lock-free structure: the unsafe-dense library shape
// the paper's §4 study samples (raw pointers, unsafe traits, manual
// encapsulation with documented preconditions).

pub struct TreiberNode {
    value: i32,
    next: *mut TreiberNode,
}

pub struct TreiberStack {
    head: AtomicUsize,
    len: AtomicUsize,
}

unsafe impl Send for TreiberStack {}
unsafe impl Sync for TreiberStack {}

impl TreiberStack {
    pub fn len(&self) -> usize {
        self.len.load()
    }

    pub fn is_empty(&self) -> bool {
        self.len.load() == 0
    }

    // Interior unsafe with an explicit emptiness check before the raw
    // dereference.
    pub fn peek_value(&self) -> i32 {
        if self.is_empty() {
            return 0;
        }
        unsafe {
            let node = self.head.load() as *const TreiberNode;
            (*node).value
        }
    }

    // Unsafe fn: the caller must guarantee the node pointer is live.
    pub unsafe fn push_node(&self, node: *mut TreiberNode) {
        let old = self.head.swap(node as usize);
        (*node).next = old as *mut TreiberNode;
        self.len.fetch_add(1);
    }
}

pub struct EpochGuard {
    epoch: usize,
}

impl EpochGuard {
    pub fn pin() -> EpochGuard {
        EpochGuard { epoch: current_epoch() }
    }

    pub fn defer_free(&self, node: *mut TreiberNode) {
        unsafe {
            retire(node as usize, self.epoch);
        }
    }
}

fn current_epoch() -> usize {
    0
}

unsafe fn retire(addr: usize, epoch: usize) {
    record_retire(addr, epoch);
}
