// Package corpus embeds the Rust-subset source corpus standing in for the
// paper's five studied applications, five libraries, and std excerpts
// (DESIGN.md documents the substitution). Files are organized into groups:
//
//   - GroupDetectorEval: the §7 evaluation set, calibrated so the two
//     detectors reproduce the paper's results exactly (4 use-after-free
//     true positives + 3 false positives; 6 double locks, 0 false
//     positives);
//   - GroupPatterns: the paper's figure patterns (Figures 4-9) and the
//     other studied bug categories, each with buggy and fixed variants;
//   - GroupUnsafe: files dense in §4's unsafe-usage forms for the
//     unsafety scanner.
package corpus

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"rustprobe/internal/ast"
	"rustprobe/internal/hir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
	"rustprobe/internal/study"
)

//go:embed rust
var rustFS embed.FS

// Group selects a corpus slice.
type Group string

// Corpus groups.
const (
	GroupDetectorEval Group = "detector-eval"
	GroupPatterns     Group = "patterns"
	GroupUnsafe       Group = "unsafe"
	// GroupApps holds app-scale, intentionally bug-free modules modeling
	// the studied projects at realistic density; used by the frontend
	// benchmarks and the clean-run regression tests.
	GroupApps Group = "apps"
	GroupAll  Group = "all"
)

// groupFiles maps groups to embedded paths.
var groupFiles = map[Group][]string{
	GroupDetectorEval: {
		"rust/redox/uaf_findings.rs",
		"rust/redox/uaf_falsepos.rs",
		"rust/ethereum/doublelock_findings.rs",
	},
	GroupPatterns: {
		"rust/servo/bioslice_sign.rs",
		"rust/servo/race_reflow.rs",
		"rust/servo/queue_peek_pop.rs",
		"rust/servo/blocking_patterns.rs",
		"rust/servo/buffer_overflow.rs",
		"rust/servo/channel_deadlock.rs",
		"rust/redox/relibc_fdopen.rs",
		"rust/redox/race_scheme.rs",
		"rust/redox/uninit_read.rs",
		"rust/tikv/double_lock_match.rs",
		"rust/tikv/registry_cycle.rs",
		"rust/tikv/race_metrics.rs",
		"rust/tikv/atomicity.rs",
		"rust/tock/mmio_share.rs",
		"rust/ethereum/authority_round.rs",
		"rust/ethereum/lock_order.rs",
		"rust/ethereum/race_sealer.rs",
		"rust/ethereum/condvar.rs",
		"rust/libs/nonblocking_patterns.rs",
		"rust/libs/race_negative.rs",
		"rust/libs/double_free_read.rs",
		"rust/libs/lazy_init.rs",
		"rust/std/testcell.rs",
	},
	GroupUnsafe: {
		"rust/tock/unsafe_usages.rs",
		"rust/std/interior_unsafe.rs",
		"rust/std/string_model.rs",
		"rust/libs/crossbeam_model.rs",
	},
	GroupApps: {
		"rust/servo/style_engine.rs",
		"rust/redox/scheme_fs.rs",
		"rust/ethereum/miner_pipeline.rs",
		"rust/tikv/raft_store.rs",
		"rust/tock/kernel_sched.rs",
	},
}

// File is one corpus source file.
type File struct {
	Path    string // embedded path, e.g. "rust/redox/uaf_findings.rs"
	Project study.Project
	Content string
}

// Files returns the files of a group in deterministic order.
func Files(group Group) ([]File, error) {
	var paths []string
	if group == GroupAll {
		for _, g := range []Group{GroupDetectorEval, GroupPatterns, GroupUnsafe, GroupApps} {
			paths = append(paths, groupFiles[g]...)
		}
	} else {
		paths = groupFiles[group]
	}
	if paths == nil {
		return nil, fmt.Errorf("corpus: unknown group %q", group)
	}
	sort.Strings(paths)
	var out []File
	for _, p := range paths {
		data, err := rustFS.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		out = append(out, File{Path: p, Project: projectOf(p), Content: string(data)})
	}
	return out, nil
}

// AllPaths returns every embedded corpus path (for tooling).
func AllPaths() []string {
	var out []string
	fs.WalkDir(rustFS, "rust", func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".rs") {
			out = append(out, path)
		}
		return nil
	})
	sort.Strings(out)
	return out
}

func projectOf(path string) study.Project {
	switch {
	case strings.Contains(path, "/servo/"):
		return study.Servo
	case strings.Contains(path, "/tock/"):
		return study.Tock
	case strings.Contains(path, "/ethereum/"):
		return study.Ethereum
	case strings.Contains(path, "/tikv/"):
		return study.TiKV
	case strings.Contains(path, "/redox/"):
		return study.Redox
	default:
		return study.Libraries
	}
}

// Load parses and resolves a corpus group into a program. Parse errors in
// the corpus are bugs in rustprobe itself and are returned as an error.
func Load(group Group) (*hir.Program, *source.Diagnostics, error) {
	files, err := Files(group)
	if err != nil {
		return nil, nil, err
	}
	fset := source.NewFileSet()
	diags := source.NewDiagnostics(fset)
	var crates []*ast.Crate
	for _, f := range files {
		sf := fset.Add(f.Path, f.Content)
		crates = append(crates, parser.ParseFile(sf, diags))
	}
	if diags.HasErrors() {
		return nil, diags, fmt.Errorf("corpus: parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crates...)
	return prog, diags, nil
}

// SyntheticCommits generates the commit-log history the §3 mining pipeline
// runs over: one commit per studied bug (with a message derived from its
// class) plus deterministic noise commits that the keyword filter must
// reject.
func SyntheticCommits(db *study.Database) []study.Commit {
	var out []study.Commit
	for i, b := range db.Bugs {
		msg := ""
		switch b.Class {
		case study.MemoryBug:
			switch b.MemEffect {
			case study.EffectBuffer:
				msg = "Fix buffer overflow in decoder"
			case study.EffectNull:
				msg = "Guard against null pointer dereference"
			case study.EffectUninit:
				msg = "Do not read uninitialized scratch memory"
			case study.EffectInvalidFree:
				msg = "Avoid invalid free of placement-new struct"
			case study.EffectUAF:
				msg = "Fix use-after-free of temporary buffer"
			case study.EffectDoubleFree:
				msg = "Prevent double free after ptr::read"
			}
		case study.BlockingBug:
			switch b.BlkCause {
			case study.CauseDoubleLock:
				msg = "Fix deadlock: double lock of state mutex"
			case study.CauseConflictingOrder:
				msg = "Fix deadlock from conflicting lock order"
			default:
				msg = "Fix hang waiting on synchronization"
			}
		default:
			msg = "Fix race condition on shared state"
		}
		out = append(out, study.Commit{
			Project: b.Project,
			Hash:    fmt.Sprintf("%s-%04d", b.ID, i),
			Date:    b.FixedAt,
			Message: msg,
		})
		// Noise commits between bug fixes.
		out = append(out, study.Commit{
			Project: b.Project,
			Hash:    fmt.Sprintf("noise-%04d", i),
			Date:    b.FixedAt.AddDate(0, 0, 1),
			Message: "Refactor module layout and update docs",
		})
	}
	return out
}
