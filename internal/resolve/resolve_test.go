package resolve

import (
	"testing"

	"rustprobe/internal/ast"
	"rustprobe/internal/hir"
	"rustprobe/internal/parser"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

func resolveSrc(t *testing.T, src string) *hir.Program {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	return Crates(fset, diags, crate)
}

func TestStructRegistry(t *testing.T) {
	prog := resolveSrc(t, `
struct Inner { m: i32, buf: Vec<u8> }
struct Pair(i32, String);
`)
	inner := prog.Structs["Inner"]
	if inner == nil {
		t.Fatal("Inner not registered")
	}
	if inner.FieldType("m").String() != "i32" {
		t.Errorf("m: %s", inner.FieldType("m"))
	}
	if inner.FieldType("buf").String() != "Vec<u8>" {
		t.Errorf("buf: %s", inner.FieldType("buf"))
	}
	if inner.FieldType("nope") != types.UnknownType {
		t.Error("missing field should be Unknown")
	}
	pair := prog.Structs["Pair"]
	if pair == nil || !pair.IsTuple || pair.FieldType("0").String() != "i32" {
		t.Errorf("Pair: %+v", pair)
	}
}

func TestEnumAndVariantOwner(t *testing.T) {
	prog := resolveSrc(t, `
enum Seal { None, Regular(i32) }
`)
	ed := prog.Enums["Seal"]
	if ed == nil || len(ed.Variants) != 2 {
		t.Fatalf("Seal: %+v", ed)
	}
	if owner := prog.VariantOwner["Regular"]; owner == nil || owner.Name != "Seal" {
		t.Errorf("VariantOwner[Regular] = %+v", owner)
	}
	if tys := ed.Variants["Regular"]; len(tys) != 1 || tys[0].String() != "i32" {
		t.Errorf("payload = %v", tys)
	}
}

func TestMethodsAndSelfKinds(t *testing.T) {
	prog := resolveSrc(t, `
struct S { v: i32 }
impl S {
    fn by_ref(&self) -> i32 { self.v }
    fn by_mut(&mut self) {}
    fn by_value(self) {}
    fn assoc() -> S { S { v: 0 } }
}
`)
	cases := map[string]ast.SelfKind{
		"S::by_ref":   ast.SelfRef,
		"S::by_mut":   ast.SelfRefMut,
		"S::by_value": ast.SelfValue,
		"S::assoc":    ast.SelfNone,
	}
	for name, want := range cases {
		fd := prog.Funcs[name]
		if fd == nil {
			t.Fatalf("missing %s", name)
		}
		if fd.SelfKind != want {
			t.Errorf("%s SelfKind = %v, want %v", name, fd.SelfKind, want)
		}
	}
	if prog.Funcs["S::by_ref"].Ret.String() != "i32" {
		t.Errorf("by_ref ret = %s", prog.Funcs["S::by_ref"].Ret)
	}
	// The receiver's semantic type.
	if prog.Funcs["S::by_ref"].Params[0].Ty.String() != "&S" {
		t.Errorf("receiver ty = %s", prog.Funcs["S::by_ref"].Params[0].Ty)
	}
}

func TestSelfReturnSubstitution(t *testing.T) {
	prog := resolveSrc(t, `
struct Builder { n: i32 }
impl Builder {
    fn new() -> Self { Builder { n: 0 } }
    fn build(&self) -> Option<Self> { None }
}
`)
	if got := prog.Funcs["Builder::new"].Ret.String(); got != "Builder" {
		t.Errorf("new ret = %s", got)
	}
	if got := prog.Funcs["Builder::build"].Ret.String(); got != "Option<Builder>" {
		t.Errorf("build ret = %s", got)
	}
}

func TestImplsAndUnsafeTraits(t *testing.T) {
	prog := resolveSrc(t, `
struct Cell { v: i32 }
unsafe impl Sync for Cell {}
trait Engine { fn step(&self); }
impl Engine for Cell { fn step(&self) {} }
`)
	if !prog.ImplementsTrait("Cell", "Sync") {
		t.Error("Sync impl lost")
	}
	if prog.UnsafeImpl("Cell", "Sync") == nil {
		t.Error("unsafe impl flag lost")
	}
	if prog.UnsafeImpl("Cell", "Engine") != nil {
		t.Error("Engine impl is not unsafe")
	}
	if fd := prog.Funcs["Cell::step"]; fd == nil || fd.TraitName != "Engine" {
		t.Errorf("trait method: %+v", fd)
	}
}

func TestTraitDefaultMethodLookup(t *testing.T) {
	prog := resolveSrc(t, `
trait Greet {
    fn name(&self) -> i32 { 0 }
}
struct G;
impl Greet for G {}
`)
	fd := prog.LookupMethod("G", "name")
	if fd == nil || fd.Qualified != "Greet::name" {
		t.Errorf("default method lookup: %+v", fd)
	}
}

func TestStaticsRegistered(t *testing.T) {
	prog := resolveSrc(t, `
static mut COUNTER: u32 = 0;
const LIMIT: usize = 10;
`)
	c := prog.Statics["COUNTER"]
	if c == nil || !c.Mut || c.IsConst {
		t.Errorf("COUNTER: %+v", c)
	}
	l := prog.Statics["LIMIT"]
	if l == nil || !l.IsConst || l.Ty.String() != "usize" {
		t.Errorf("LIMIT: %+v", l)
	}
}

func TestModItemsCollected(t *testing.T) {
	prog := resolveSrc(t, `
mod inner {
    struct Hidden { v: i32 }
    fn helper() {}
}
`)
	if prog.Structs["Hidden"] == nil {
		t.Error("struct inside mod not collected")
	}
	if prog.Funcs["helper"] == nil {
		t.Error("fn inside mod not collected")
	}
}

func TestConvertTypeForms(t *testing.T) {
	cases := map[string]string{
		"i32":                     "i32",
		"&str":                    "&str",
		"&'a mut T":               "&mut T",
		"*const u8":               "*const u8",
		"(i32, bool)":             "(i32, bool)",
		"[u8]":                    "[u8]",
		"[u8; 4]":                 "[u8; 4]",
		"Arc<Mutex<Inner>>":       "Arc<Mutex<Inner>>",
		"fn(i32) -> bool":         "fn(i32) -> bool",
		"Option<Box<dyn Engine>>": "Option<Box<dyn Engine>>",
	}
	for src, want := range cases {
		prog := resolveSrc(t, "fn f(x: "+src+") {}")
		got := prog.Funcs["f"].Params[0].Ty.String()
		if got != want {
			t.Errorf("ConvertType(%q) = %q, want %q", src, got, want)
		}
	}
}
