// Package resolve builds the hir.Program registry from parsed crates: it
// collects structs, enums, traits, impls, statics and functions, and
// converts syntactic types to semantic types. Local-variable scoping is the
// lower package's job.
package resolve

import (
	"strconv"

	"rustprobe/internal/ast"
	"rustprobe/internal/hir"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// Resolver converts crates into a Program.
type Resolver struct {
	prog  *hir.Program
	diags *source.Diagnostics
}

// Crates resolves the given crates into a Program, reporting duplicate
// definitions through diags.
func Crates(fset *source.FileSet, diags *source.Diagnostics, crates ...*ast.Crate) *hir.Program {
	r := &Resolver{prog: hir.NewProgram(fset), diags: diags}
	r.prog.Crates = crates
	// Pass 1: collect nominal types so signatures can reference them.
	for _, c := range crates {
		r.collectTypes(c.Items)
	}
	// Pass 2: collect functions, impls, statics.
	for _, c := range crates {
		r.collectValues(c.Items, "", "", false)
	}
	return r.prog
}

func (r *Resolver) collectTypes(items []ast.Item) {
	for _, it := range items {
		switch it := it.(type) {
		case *ast.StructItem:
			sd := &hir.StructDef{
				Name:    it.Name,
				Fields:  map[string]types.Type{},
				IsTuple: it.IsTuple,
				Span:    it.Sp,
				Syntax:  it,
			}
			for _, f := range it.Fields {
				sd.Fields[f.Name] = ConvertType(f.Ty)
				sd.Order = append(sd.Order, f.Name)
			}
			if prev, dup := r.prog.Structs[it.Name]; dup {
				r.diags.Warningf(it.Sp, "struct %s redefined (previous at %s)", it.Name, r.prog.Fset.Position(prev.Span.Start))
			}
			r.prog.Structs[it.Name] = sd
		case *ast.EnumItem:
			ed := &hir.EnumDef{
				Name:     it.Name,
				Variants: map[string][]types.Type{},
				Span:     it.Sp,
				Syntax:   it,
			}
			for _, v := range it.Variants {
				var tys []types.Type
				for _, f := range v.Fields {
					tys = append(tys, ConvertType(f.Ty))
				}
				ed.Variants[v.Name] = tys
				ed.Order = append(ed.Order, v.Name)
				if _, taken := r.prog.VariantOwner[v.Name]; !taken {
					r.prog.VariantOwner[v.Name] = ed
				}
			}
			r.prog.Enums[it.Name] = ed
		case *ast.TraitItem:
			td := &hir.TraitDef{Name: it.Name, Unsafety: it.Unsafety, Span: it.Sp, Syntax: it}
			for _, sub := range it.Items {
				if f, ok := sub.(*ast.FnItem); ok {
					td.Methods = append(td.Methods, f.Name)
				}
			}
			r.prog.Traits[it.Name] = td
		case *ast.ModItem:
			r.collectTypes(it.Items)
		}
	}
}

// collectValues registers functions (free, inherent methods, trait methods
// with bodies) and impls. selfTy/traitName describe the enclosing impl or
// trait; inTrait marks trait bodies (default methods).
func (r *Resolver) collectValues(items []ast.Item, selfTy, traitName string, inTrait bool) {
	for _, it := range items {
		switch it := it.(type) {
		case *ast.FnItem:
			r.registerFn(it, selfTy, traitName)
		case *ast.ImplItem:
			name := typeName(it.SelfTy)
			im := &hir.ImplDef{TypeName: name, TraitName: it.TraitName, Unsafety: it.Unsafety, Span: it.Sp, Syntax: it}
			r.prog.Impls = append(r.prog.Impls, im)
			r.collectValues(it.Items, name, it.TraitName, false)
		case *ast.TraitItem:
			// Default methods get registered under "Trait::name".
			r.collectValues(it.Items, it.Name, "", true)
		case *ast.StaticItem:
			var ty types.Type = types.UnknownType
			if it.Ty != nil {
				ty = ConvertType(it.Ty)
			}
			r.prog.Statics[it.Name] = &hir.StaticDef{
				Name: it.Name, Mut: it.Mut, IsConst: it.IsConst, Ty: ty, Span: it.Sp, Syntax: it,
			}
		case *ast.ModItem:
			r.collectValues(it.Items, "", "", false)
		}
	}
}

func (r *Resolver) registerFn(it *ast.FnItem, selfTy, traitName string) {
	fd := &hir.FuncDef{
		Name:      it.Name,
		SelfType:  selfTy,
		Unsafety:  it.Unsafety,
		Ret:       types.UnitType,
		Span:      it.Sp,
		Syntax:    it,
		TraitName: traitName,
	}
	if selfTy != "" {
		fd.Qualified = selfTy + "::" + it.Name
	} else {
		fd.Qualified = it.Name
	}
	selfSem := types.Type(types.UnknownType)
	if selfTy != "" {
		selfSem = types.NamedOf(selfTy)
	}
	for _, p := range it.Decl.Params {
		pd := hir.ParamDef{Name: p.Name}
		switch p.SelfKind {
		case ast.SelfValue:
			fd.SelfKind = ast.SelfValue
			pd.Ty = selfSem
		case ast.SelfRef:
			fd.SelfKind = ast.SelfRef
			pd.Ty = types.RefTo(selfSem)
		case ast.SelfRefMut:
			fd.SelfKind = ast.SelfRefMut
			pd.Ty = types.MutRefTo(selfSem)
		default:
			if p.Ty != nil {
				pd.Ty = ConvertType(p.Ty)
			} else {
				pd.Ty = types.UnknownType
			}
			if p.Name == "" && p.Pat != nil {
				pd.Pat = p.Pat
			}
		}
		fd.Params = append(fd.Params, pd)
	}
	if it.Decl.Ret != nil {
		fd.Ret = ConvertType(it.Decl.Ret)
	}
	// Replace `Self` in the return type with the impl's self type.
	if selfTy != "" {
		fd.Ret = substSelf(fd.Ret, selfTy)
		for i := range fd.Params {
			fd.Params[i].Ty = substSelf(fd.Params[i].Ty, selfTy)
		}
	}
	if it.Body == nil && traitName == "" && selfTy != "" {
		// A signature-only method in an impl (shouldn't happen); still
		// register for signature lookups.
	}
	if prev, dup := r.prog.Funcs[fd.Qualified]; dup && prev.Syntax.Body != nil && it.Body == nil {
		return // keep the definition with a body
	}
	r.prog.Funcs[fd.Qualified] = fd
}

func substSelf(t types.Type, selfTy string) types.Type {
	switch t := t.(type) {
	case *types.Named:
		if t.Name == "Self" {
			return types.NamedOf(selfTy)
		}
		args := make([]types.Type, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = substSelf(a, selfTy)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			return &types.Named{Name: t.Name, Args: args}
		}
		return t
	case *types.Ref:
		e := substSelf(t.Elem, selfTy)
		if e != t.Elem {
			return &types.Ref{Mut: t.Mut, Elem: e}
		}
		return t
	case *types.RawPtr:
		e := substSelf(t.Elem, selfTy)
		if e != t.Elem {
			return &types.RawPtr{Mut: t.Mut, Elem: e}
		}
		return t
	default:
		return t
	}
}

func typeName(t ast.Type) string {
	switch t := t.(type) {
	case *ast.PathType:
		return t.Name()
	case *ast.RefType:
		return typeName(t.Elem)
	case *ast.RawPtrType:
		return typeName(t.Elem)
	default:
		return ""
	}
}

// ConvertType converts a syntactic type to a semantic type.
func ConvertType(t ast.Type) types.Type {
	switch t := t.(type) {
	case nil:
		return types.UnknownType
	case *ast.PathType:
		name := t.Name()
		if name == "!" {
			return types.NeverType
		}
		if pk, ok := types.PrimByName[name]; ok {
			return &types.Prim{Kind: pk}
		}
		var args []types.Type
		for _, a := range t.Args {
			args = append(args, ConvertType(a))
		}
		return &types.Named{Name: name, Args: args}
	case *ast.RefType:
		return &types.Ref{Mut: t.Mut, Elem: ConvertType(t.Elem)}
	case *ast.RawPtrType:
		return &types.RawPtr{Mut: t.Mut, Elem: ConvertType(t.Elem)}
	case *ast.TupleType:
		if len(t.Elems) == 0 {
			return types.UnitType
		}
		var elems []types.Type
		for _, e := range t.Elems {
			elems = append(elems, ConvertType(e))
		}
		return &types.Tuple{Elems: elems}
	case *ast.SliceType:
		return &types.Slice{Elem: ConvertType(t.Elem)}
	case *ast.ArrayType:
		ln := -1
		if lit, ok := t.Len.(*ast.LitExpr); ok && lit.Kind == ast.LitInt {
			if v, err := strconv.Atoi(lit.Text); err == nil {
				ln = v
			}
		}
		return &types.Array{Elem: ConvertType(t.Elem), Len: ln}
	case *ast.FnPtrType:
		var params []types.Type
		for _, p := range t.Params {
			params = append(params, ConvertType(p))
		}
		ret := types.Type(types.UnitType)
		if t.Ret != nil {
			ret = ConvertType(t.Ret)
		}
		return &types.Fn{Params: params, Ret: ret}
	case *ast.InferType:
		return types.UnknownType
	case *ast.DynType:
		return types.NamedOf("dyn " + t.TraitName)
	default:
		return types.UnknownType
	}
}
