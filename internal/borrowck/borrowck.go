// Package borrowck implements an NLL-style borrow analysis over MIR: each
// borrow is live from its creation to the last use of the reference, and
// two live borrows of overlapping places conflict when either is mutable.
// This is the static underpinning for the paper's interior-mutability
// discussion (§4.3, Figure 5): APIs that hand out a shared reference while
// another path mutates the same storage.
package borrowck

import (
	"fmt"

	"rustprobe/internal/cfg"
	"rustprobe/internal/dataflow"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
)

// Borrow is one borrow site.
type Borrow struct {
	Index   int
	Mut     bool
	Place   mir.Place   // the borrowed place
	Dest    mir.LocalID // the reference-holding local
	Block   mir.BlockID
	StmtIdx int
	Span    source.Span
}

// Conflict is a pair of overlapping live borrows with at least one mutable.
type Conflict struct {
	First, Second Borrow
	At            source.Span // program point where both are live
}

// Analysis holds the computed borrows and liveness for one body.
type Analysis struct {
	Body     *mir.Body
	Graph    *cfg.Graph
	Borrows  []Borrow
	liveness *dataflow.Result // bit i = borrow i may be live
	lastUse  []map[mir.LocalID]bool
}

// Analyze collects borrows and computes their live ranges.
func Analyze(body *mir.Body) *Analysis {
	g := cfg.New(body)
	a := &Analysis{Body: body, Graph: g}

	// Collect borrow sites.
	for _, blk := range body.Blocks {
		for i, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok {
				continue
			}
			var mut bool
			var pl mir.Place
			switch rv := as.Rvalue.(type) {
			case mir.Ref:
				mut, pl = rv.Mut, rv.Place
			case mir.AddrOf:
				mut, pl = rv.Mut, rv.Place
			default:
				continue
			}
			if as.Place.HasDeref() {
				continue
			}
			a.Borrows = append(a.Borrows, Borrow{
				Index: len(a.Borrows), Mut: mut, Place: pl,
				Dest: as.Place.Local, Block: blk.ID, StmtIdx: i, Span: as.Span,
			})
		}
	}
	if len(a.Borrows) == 0 {
		return a
	}

	// Holder closure: the set of locals a borrow's reference may flow into
	// through copies, moves and casts (r1 = &x creates the borrow in a
	// temporary that the let-binding then copies out of). A borrow dies
	// when its *only* holder's storage ends; multi-holder borrows stay
	// live conservatively — over-liveness is sound for conflict
	// reporting.
	holders := make([]map[mir.LocalID]bool, len(a.Borrows))
	for i, bw := range a.Borrows {
		holders[i] = map[mir.LocalID]bool{bw.Dest: true}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || as.Place.HasDeref() {
					continue
				}
				var src mir.Place
				switch rv := as.Rvalue.(type) {
				case mir.Use:
					pl, ok := mir.OperandPlace(rv.X)
					if !ok {
						continue
					}
					src = pl
				case mir.Cast:
					pl, ok := mir.OperandPlace(rv.X)
					if !ok {
						continue
					}
					src = pl
				default:
					continue
				}
				for i := range holders {
					if holders[i][src.Local] && !holders[i][as.Place.Local] {
						holders[i][as.Place.Local] = true
						changed = true
					}
				}
			}
		}
	}

	soleHolder := func(bi int, l mir.LocalID) bool {
		return len(holders[bi]) == 1 && holders[bi][l]
	}

	prob := &dataflow.Problem{
		Bits: len(a.Borrows),
		Join: dataflow.JoinUnion,
		TransferStmt: func(state dataflow.BitSet, blk mir.BlockID, idx int, st mir.Statement) {
			switch st := st.(type) {
			case mir.Assign:
				switch st.Rvalue.(type) {
				case mir.Ref, mir.AddrOf:
					if bi, ok := findBorrow(a.Borrows, blk, idx); ok {
						state.Set(bi)
					}
					return
				}
				if !st.Place.HasDeref() {
					for bi := range holders {
						if soleHolder(bi, st.Place.Local) {
							state.Clear(bi)
						}
					}
				}
			case mir.StorageDead:
				for bi := range holders {
					if soleHolder(bi, st.Local) {
						state.Clear(bi)
					}
				}
			}
		},
	}
	a.liveness = dataflow.Forward(g, prob)
	return a
}

func findBorrow(borrows []Borrow, blk mir.BlockID, idx int) (int, bool) {
	for _, b := range borrows {
		if b.Block == blk && b.StmtIdx == idx {
			return b.Index, true
		}
	}
	return 0, false
}

// overlaps reports whether two places may alias: same root local and one
// projection path is a prefix of the other (index projections always
// overlap).
func overlaps(a, b mir.Place) bool {
	if a.Local != b.Local {
		return false
	}
	n := len(a.Proj)
	if len(b.Proj) < n {
		n = len(b.Proj)
	}
	for i := 0; i < n; i++ {
		af, aIsField := a.Proj[i].(mir.FieldProj)
		bf, bIsField := b.Proj[i].(mir.FieldProj)
		if aIsField && bIsField && af.Name != bf.Name {
			return false
		}
	}
	return true
}

// Conflicts reports pairs of simultaneously-live overlapping borrows where
// at least one is mutable.
func (a *Analysis) Conflicts() []Conflict {
	if a.liveness == nil {
		return nil
	}
	var out []Conflict
	seen := map[[2]int]bool{}
	for _, blk := range a.Body.Blocks {
		if !a.Graph.Reachable(blk.ID) {
			continue
		}
		for i := range blk.Stmts {
			state := a.liveness.StateAt(blk.ID, i)
			var live []int
			state.ForEach(func(bi int) { live = append(live, bi) })
			for x := 0; x < len(live); x++ {
				for y := x + 1; y < len(live); y++ {
					b1, b2 := a.Borrows[live[x]], a.Borrows[live[y]]
					if !b1.Mut && !b2.Mut {
						continue
					}
					if !overlaps(b1.Place, b2.Place) {
						continue
					}
					key := [2]int{live[x], live[y]}
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, Conflict{First: b1, Second: b2, At: blk.Stmts[i].StmtSpan()})
				}
			}
		}
	}
	return out
}

// LiveBorrowsAt returns the borrows live at the given statement index.
func (a *Analysis) LiveBorrowsAt(blk mir.BlockID, idx int) []Borrow {
	if a.liveness == nil {
		return nil
	}
	state := a.liveness.StateAt(blk, idx)
	var out []Borrow
	state.ForEach(func(bi int) { out = append(out, a.Borrows[bi]) })
	return out
}

// String summarizes the analysis for debugging.
func (a *Analysis) String() string {
	return fmt.Sprintf("borrowck(%s): %d borrows", a.Body.Func.Qualified, len(a.Borrows))
}
