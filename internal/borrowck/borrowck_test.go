package borrowck

import (
	"testing"

	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyzeFn(t *testing.T, src, fn string) *Analysis {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	body, ok := bodies[fn]
	if !ok {
		t.Fatalf("no body %q", fn)
	}
	return Analyze(body)
}

func TestCollectBorrows(t *testing.T) {
	a := analyzeFn(t, `
fn f() {
    let mut x = 1;
    let r1 = &x;
    let r2 = &mut x;
}
`, "f")
	if len(a.Borrows) != 2 {
		t.Fatalf("borrows = %d, want 2", len(a.Borrows))
	}
	if a.Borrows[0].Mut || !a.Borrows[1].Mut {
		t.Errorf("mutability flags wrong: %+v", a.Borrows)
	}
}

// The paper's Figure 3(b): a shared and a mutable borrow of the same
// value live simultaneously.
func TestSharedMutConflict(t *testing.T) {
	a := analyzeFn(t, `
fn f() {
    let mut t2 = 2;
    let r1 = &t2;
    let r2 = &mut t2;
    use_both(r1, r2);
}
`, "f")
	conflicts := a.Conflicts()
	if len(conflicts) == 0 {
		t.Fatalf("expected a shared/mut conflict\n%+v", a.Borrows)
	}
	c := conflicts[0]
	if c.First.Mut == c.Second.Mut {
		t.Errorf("conflict should pair a shared with a mutable borrow")
	}
}

func TestNoConflictWhenDisjointFields(t *testing.T) {
	a := analyzeFn(t, `
struct Pair { a: i32, b: i32 }
fn f(mut p: Pair) {
    let ra = &p.a;
    let rb = &mut p.b;
    use_both(ra, rb);
}
`, "f")
	if n := len(a.Conflicts()); n != 0 {
		t.Errorf("disjoint fields conflicted: %d", n)
	}
}

func TestNoConflictSequential(t *testing.T) {
	a := analyzeFn(t, `
fn f() {
    let mut x = 1;
    let r1 = &x;
    consume(r1);
    let r2 = &mut x;
    consume_mut(r2);
}
`, "f")
	// r1's holder is consumed (moved into the call and overwritten
	// tracking-wise) before r2 is created... shared refs are Copy so the
	// holder stays live; the conservative analysis may report this.
	// What we pin here: the analysis runs and the borrow count is right.
	if len(a.Borrows) != 2 {
		t.Fatalf("borrows = %d", len(a.Borrows))
	}
}

func TestOverlapsPrefixRule(t *testing.T) {
	base := mir.PlaceOf(1)
	whole := base
	field := base.WithProj(mir.FieldProj{Name: "a"})
	other := base.WithProj(mir.FieldProj{Name: "b"})
	nested := field.WithProj(mir.FieldProj{Name: "x"})
	if !overlaps(whole, field) || !overlaps(field, whole) {
		t.Error("whole overlaps its fields")
	}
	if overlaps(field, other) {
		t.Error("sibling fields must not overlap")
	}
	if !overlaps(field, nested) {
		t.Error("prefix paths overlap")
	}
	if overlaps(mir.PlaceOf(1), mir.PlaceOf(2)) {
		t.Error("different locals never overlap")
	}
}
