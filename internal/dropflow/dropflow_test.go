package dropflow_test

import (
	"strings"
	"testing"

	"rustprobe/internal/callgraph"
	"rustprobe/internal/dropflow"
	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func build(t *testing.T, src string) map[string]*mir.Body {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	return lower.Program(prog, diags)
}

// analyzeFn runs the full summary fixpoint and returns fn's walk result.
func analyzeFn(t *testing.T, bodies map[string]*mir.Body, fn string) *dropflow.Result {
	t.Helper()
	body := bodies[fn]
	if body == nil {
		t.Fatalf("no body for %q", fn)
	}
	sums := dropflow.ComputeSummaries(bodies, callgraph.Build(bodies))
	return dropflow.Analyze(body, dropflow.Options{Lookup: func(name string) (*dropflow.FnSummary, bool) {
		s, ok := sums[name]
		return s, ok
	}})
}

// verdictFor ORs the verdicts of every site whose pointer local carries
// the given source name, so tests don't hardcode block/statement indices.
func verdictFor(t *testing.T, body *mir.Body, res *dropflow.Result, local string) (dropflow.Verdict, bool) {
	t.Helper()
	var out dropflow.Verdict
	found := false
	for k, v := range res.Sites {
		if body.Local(k.Local).Name != local {
			continue
		}
		found = true
		out.MayUseDead = out.MayUseDead || v.MayUseDead
		out.MayUninit = out.MayUninit || v.MayUninit
		out.MayDoubleFree = out.MayDoubleFree || v.MayDoubleFree
	}
	return out, found
}

// The three planted §7 false-positive shapes (rust/redox/uaf_falsepos.rs).

// FP cause 1: context-insensitivity — the callee dereferences its pointer
// parameter only when its bool parameter is true, and the caller passes
// false after the drop.
const fpContextSrc = `
fn maybe_deref(p: *const u8, do_it: bool) -> u8 {
    if do_it { unsafe { *p } } else { 0 }
}

pub fn fp_context() -> u8 {
    let v = vec![1u8];
    let p = v.as_ptr();
    drop(v);
    maybe_deref(p, false)
}
`

func TestContextSensitiveGuardRefutesCallSite(t *testing.T) {
	bodies := build(t, fpContextSrc)

	sums := dropflow.ComputeSummaries(bodies, callgraph.Build(bodies))
	callee := sums["maybe_deref"]
	if callee == nil || callee.Opaque {
		t.Fatalf("maybe_deref summary missing or opaque: %v", callee)
	}
	guard, ok := callee.Params[0]
	if !ok {
		t.Fatalf("maybe_deref summary lacks a param-0 deref: %s", callee)
	}
	if len(guard) != 1 || len(guard[0]) != 1 || guard[0][0] != (dropflow.Cond{Param: 1, Value: "true"}) {
		t.Fatalf("param-0 guard should be exactly [p1=true], got %s", callee)
	}

	res := analyzeFn(t, bodies, "fp_context")
	if res.Bailed {
		t.Fatal("walk bailed")
	}
	v, found := verdictFor(t, bodies["fp_context"], res, "p")
	if !found {
		t.Fatal("no site recorded for p at the maybe_deref call")
	}
	if v.MayUseDead {
		t.Fatal("const-false guard should refute the call-site deref of the dead pointer")
	}
}

func TestContextGuardSatisfiedKeepsFinding(t *testing.T) {
	bodies := build(t, strings.Replace(fpContextSrc, "maybe_deref(p, false)", "maybe_deref(p, true)", 1))
	res := analyzeFn(t, bodies, "fp_context")
	v, found := verdictFor(t, bodies["fp_context"], res, "p")
	if !found || !v.MayUseDead {
		t.Fatalf("passing true must keep the use-after-free verdict (found=%v, v=%+v)", found, v)
	}
}

// FP cause 2: flow-insensitive points-to — the pointer is retargeted
// between the drop and the deref, so the deref never touches the freed
// buffer.
const fpFlowSrc = `
pub fn fp_flow() -> u8 {
    let a = [1u8, 2u8];
    let mut p = a.as_ptr();
    let b = vec![3u8];
    p = b.as_ptr();
    drop(b);
    p = a.as_ptr();
    unsafe { *p }
}
`

func TestStrongUpdateRefutesRetargetedPointer(t *testing.T) {
	bodies := build(t, fpFlowSrc)
	res := analyzeFn(t, bodies, "fp_flow")
	if res.Bailed {
		t.Fatal("walk bailed")
	}
	v, found := verdictFor(t, bodies["fp_flow"], res, "p")
	if !found {
		t.Fatal("no deref site recorded for p")
	}
	if v.MayUseDead {
		t.Fatal("strong update retargeted p before the deref; verdict must be safe")
	}
}

func TestStrongUpdateStillCatchesRealDanglingDeref(t *testing.T) {
	// Same shape without the final retarget: p still aims at the freed b.
	src := strings.Replace(fpFlowSrc, "p = a.as_ptr();\n    unsafe { *p }", "unsafe { *p }", 1)
	bodies := build(t, src)
	res := analyzeFn(t, bodies, "fp_flow")
	v, found := verdictFor(t, bodies["fp_flow"], res, "p")
	if !found || !v.MayUseDead {
		t.Fatalf("deref of freed b must stay flagged (found=%v, v=%+v)", found, v)
	}
}

// FP cause 3: path-insensitivity — the drop and the deref are guarded by
// complementary conditions, so no execution performs both.
const fpPathSrc = `
pub fn fp_path(c: bool) -> u8 {
    let v = vec![1u8];
    let p = v.as_ptr();
    if c {
        drop(v);
    }
    if !c {
        unsafe { *p }
    } else {
        0
    }
}
`

func TestBranchCorrelationRefutesExclusivePaths(t *testing.T) {
	bodies := build(t, fpPathSrc)
	res := analyzeFn(t, bodies, "fp_path")
	if res.Bailed {
		t.Fatal("walk bailed")
	}
	v, found := verdictFor(t, bodies["fp_path"], res, "p")
	if !found {
		t.Fatal("no deref site recorded for p")
	}
	if v.MayUseDead {
		t.Fatal("drop and deref are on complementary branches; verdict must be safe")
	}
}

func TestBranchCorrelationKeepsSameBranchBug(t *testing.T) {
	// Drop and deref under the SAME condition: the c=true path runs both.
	src := strings.Replace(fpPathSrc, "if !c {", "if c {", 1)
	bodies := build(t, src)
	res := analyzeFn(t, bodies, "fp_path")
	v, found := verdictFor(t, bodies["fp_path"], res, "p")
	if !found || !v.MayUseDead {
		t.Fatalf("same-branch drop+deref must stay flagged (found=%v, v=%+v)", found, v)
	}
}

// Alias classes: ownership that escapes through into_raw survives the
// owner's scope end, and comes back under drop's control via from_raw.
const roundTripSrc = `
pub fn round_trip() -> u8 {
    let q = {
        let b = Box::new(7u8);
        Box::into_raw(b)
    };
    let y = unsafe { *q };
    let ob = unsafe { Box::from_raw(q) };
    drop(ob);
    y
}
`

func TestIntoRawEscapeSurvivesScopeEnd(t *testing.T) {
	bodies := build(t, roundTripSrc)
	res := analyzeFn(t, bodies, "round_trip")
	if res.Bailed {
		t.Fatal("walk bailed")
	}
	v, found := verdictFor(t, bodies["round_trip"], res, "q")
	if !found {
		t.Fatal("no deref site recorded for q")
	}
	if v.MayUseDead {
		t.Fatal("into_raw escaped ownership: deref after the owner's scope end is safe")
	}
}

func TestFromRawReadoptionMakesDropFatal(t *testing.T) {
	// Move the deref after drop(ob): from_raw re-adopted the class, so
	// dropping ob frees the allocation q still points at.
	src := `
pub fn round_trip() -> u8 {
    let q = {
        let b = Box::new(7u8);
        Box::into_raw(b)
    };
    let ob = unsafe { Box::from_raw(q) };
    drop(ob);
    let y = unsafe { *q };
    y
}
`
	bodies := build(t, src)
	res := analyzeFn(t, bodies, "round_trip")
	v, found := verdictFor(t, bodies["round_trip"], res, "q")
	if !found || !v.MayUseDead {
		t.Fatalf("deref after dropping the re-adopted owner must be flagged (found=%v, v=%+v)", found, v)
	}
}

// Uninitialized-memory class tracking (alloc / ptr::write).
func TestUninitClassClearedByPtrWrite(t *testing.T) {
	src := `
pub fn init_then_read() -> u8 {
    let p = alloc(1) as *mut u8;
    unsafe { ptr::write(p, 5u8); }
    unsafe { *p }
}
`
	bodies := build(t, src)
	res := analyzeFn(t, bodies, "init_then_read")
	v, found := verdictFor(t, bodies["init_then_read"], res, "p")
	if !found {
		t.Fatal("no site recorded for p")
	}
	if v.MayUninit {
		t.Fatal("ptr::write initialized the class before the read")
	}
}

func TestUninitReadFlagged(t *testing.T) {
	src := `
pub fn read_uninit() -> u8 {
    let p = alloc(1) as *mut u8;
    unsafe { *p }
}
`
	bodies := build(t, src)
	res := analyzeFn(t, bodies, "read_uninit")
	v, found := verdictFor(t, bodies["read_uninit"], res, "p")
	if !found || !v.MayUninit {
		t.Fatalf("read of unwritten allocation must be flagged (found=%v, v=%+v)", found, v)
	}
}

// The merge cap: a function with more distinct path states than
// MaxStates collapses to joined semantics and stays conservative (the
// exclusive-path refutation is lost, not wrongly kept).
func TestMergeCapFallsBackToJoinedSemantics(t *testing.T) {
	var b strings.Builder
	b.WriteString("pub fn wide(c: bool, x1: bool, x2: bool, x3: bool, x4: bool) -> u8 {\n")
	b.WriteString("    let v = vec![1u8];\n    let p = v.as_ptr();\n")
	b.WriteString("    if c { drop(v); }\n")
	// Each independent branch between the correlated pair doubles the
	// state count, overflowing MaxStates=2 and erasing the c-env fact at
	// the collapse.
	for i := 1; i <= 4; i++ {
		b.WriteString("    if x")
		b.WriteString(string(rune('0' + i)))
		b.WriteString(" { let _s = 1; } \n")
	}
	b.WriteString("    if !c { unsafe { *p } } else { 0 }\n}\n")
	bodies := build(t, b.String())
	body := bodies["wide"]
	if body == nil {
		t.Fatal("no body for wide")
	}
	res := dropflow.Analyze(body, dropflow.Options{MaxStates: 2})
	v, found := verdictFor(t, body, res, "p")
	if !found {
		t.Fatal("no deref site recorded for p")
	}
	if !v.MayUseDead {
		t.Fatal("collapsed joined state must keep the conservative may-use-dead verdict")
	}
	// With a roomy cap the correlation survives the same CFG.
	res = dropflow.Analyze(body, dropflow.Options{MaxStates: 64})
	v, _ = verdictFor(t, body, res, "p")
	if v.MayUseDead {
		t.Fatal("with enough states the exclusive-path refutation must hold")
	}
}

// The visit budget: pathological re-walking bails the analysis, which
// must disable every refutation rather than claim safety.
func TestVisitBudgetBails(t *testing.T) {
	src := `
pub fn loopy(n: i32) -> u8 {
    let v = vec![1u8];
    let p = v.as_ptr();
    let mut i = n;
    while i > 0 {
        i = i - 1;
    }
    unsafe { *p }
}
`
	bodies := build(t, src)
	body := bodies["loopy"]
	res := dropflow.Analyze(body, dropflow.Options{MaxVisits: 1})
	if !res.Bailed {
		t.Fatal("a one-visit budget on a loop must bail")
	}
	if res.RefutesUseDead(dropflow.SiteKey{}) {
		t.Fatal("a bailed result must refute nothing")
	}
}

// Double-free through a ptr::read ownership duplicate.
func TestPtrReadDoubleDropFlagged(t *testing.T) {
	src := `
struct Wrap { v: Vec<u8> }

pub fn dup_drop() {
    let w = Wrap { v: Vec::new() };
    let r = &w as *const Wrap;
    let w2 = unsafe { ptr::read(r) };
    drop(w2);
}
`
	bodies := build(t, src)
	res := analyzeFn(t, bodies, "dup_drop")
	v, found := verdictFor(t, bodies["dup_drop"], res, "r")
	if !found || !v.MayDoubleFree {
		t.Fatalf("dropping both the original and the ptr::read duplicate must flag the read site (found=%v, v=%+v)", found, v)
	}
}

func TestPtrReadExclusivePathsRefuted(t *testing.T) {
	src := `
struct Wrap { v: Vec<u8> }

pub fn dup_one_path(c: bool) {
    let w = Wrap { v: Vec::new() };
    let r = &w as *const Wrap;
    if c {
        let w2 = unsafe { ptr::read(r) };
        drop(w2);
        forget(w);
    }
}
`
	bodies := build(t, src)
	res := analyzeFn(t, bodies, "dup_one_path")
	if res.Bailed {
		t.Fatal("walk bailed")
	}
	v, found := verdictFor(t, bodies["dup_one_path"], res, "r")
	if !found {
		t.Fatal("no site recorded for r")
	}
	if v.MayDoubleFree {
		t.Fatal("forget neutralizes the original owner: no path frees twice")
	}
}
