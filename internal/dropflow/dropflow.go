// Package dropflow is the shared path-sensitive drop-and-alias analysis
// underlying the precise (-precise) mode of the uaf, dfree, and uninit
// detectors. It walks a function's CFG keeping one abstract state per
// explored path prefix — a value environment for branch correlation, a
// per-path alive/dead lattice over drop-class roots, flow-sensitive
// points-to with strong updates, and alias classes that survive
// Box::into_raw / Box::from_raw round-trips (the SafeDrop model,
// arXiv 2103.15420).
//
// The analysis is a refuter, not a finder: it records a Verdict for every
// syntactic site the default (paper-faithful) detectors can report, and a
// precise detector drops a default finding only when the verdict proves
// the site safe on every feasible path. Anything the walk cannot prove —
// unknown points-to, merged paths, a bailed walk — keeps the default
// finding, so precise findings are always a subset of default findings.
//
// Path explosion is bounded two ways: at CFG merge points at most
// MaxStates distinct states are kept per block (beyond that the block
// falls back to a single joined state with path-insensitive join
// semantics), and a per-block visit budget bails the whole walk
// (Result.Bailed) so pathological CFGs stay linear-ish.
package dropflow

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/mir"
	"rustprobe/internal/types"
)

// SiteKey names one syntactic site a detector may report: a statement
// (Stmt >= 0) or the block terminator (Stmt == -1), plus the pointer or
// owner local the report is about. Detectors construct the same key at
// report time, so matching is exact rather than span-based.
type SiteKey struct {
	Block mir.BlockID
	Stmt  int // statement index within the block, -1 for the terminator
	Local mir.LocalID
}

func (k SiteKey) String() string {
	return fmt.Sprintf("bb%d/%d/_%d", k.Block, k.Stmt, k.Local)
}

// Verdict accumulates may-facts for one site across every explored path.
// A bit left false after the walk is a proof: no feasible path reaches
// the site in the offending state.
type Verdict struct {
	// MayUseDead: some feasible path dereferences the site's pointer while
	// a pointee root is dead (freed or storage-dead).
	MayUseDead bool
	// MayUninit: some feasible path reads or drop-assigns through the
	// pointer while a pointee root's memory is uninitialized.
	MayUninit bool
	// MayDoubleFree: some feasible path frees the same drop-class root
	// twice through a ptr::read ownership duplicate.
	MayDoubleFree bool
}

// Result is the per-function analysis output.
type Result struct {
	Sites map[SiteKey]*Verdict
	// Summary is the caller-indexed parameter-dereference summary derived
	// from the same walk (which params may be dereferenced, under which
	// argument-value guards).
	Summary *FnSummary
	// Bailed is set when the walk hit its step budget; no refutations may
	// be drawn from a bailed result.
	Bailed bool
}

// RefutesUseDead reports whether the walk proved the deref at k never
// touches dead storage on any feasible path.
func (r *Result) RefutesUseDead(k SiteKey) bool {
	if r == nil || r.Bailed {
		return false
	}
	v, ok := r.Sites[k]
	return ok && !v.MayUseDead
}

// RefutesUninit reports whether the walk proved the access at k never
// touches uninitialized memory on any feasible path.
func (r *Result) RefutesUninit(k SiteKey) bool {
	if r == nil || r.Bailed {
		return false
	}
	v, ok := r.Sites[k]
	return ok && !v.MayUninit
}

// RefutesDoubleFree reports whether the walk proved the ownership
// duplication at k never leads to a second free on any feasible path.
func (r *Result) RefutesDoubleFree(k SiteKey) bool {
	if r == nil || r.Bailed {
		return false
	}
	v, ok := r.Sites[k]
	return ok && !v.MayDoubleFree
}

// Options tunes one walk.
type Options struct {
	// MaxStates caps distinct path states kept per block before the block
	// collapses to joined semantics. <= 0 selects DefaultMaxStates.
	MaxStates int
	// MaxVisits caps how often any single block is re-walked before the
	// analysis bails. <= 0 selects DefaultMaxVisits.
	MaxVisits int
	// Lookup resolves callee summaries for context-sensitive call-site
	// evaluation; nil treats every callee as unknown.
	Lookup func(callee string) (*FnSummary, bool)
}

// Default bounds: generous for generated/corpus-sized functions, tiny in
// absolute terms so the walk stays linear-ish on real CFGs.
const (
	DefaultMaxStates = 8
	DefaultMaxVisits = 64
)

// state is one path-prefix abstract state. All maps are keyed by local.
type state struct {
	// env holds known constant values ("true", "false", "0", ...) —
	// branch assertions and propagated constants.
	env map[mir.LocalID]string
	// orig maps a local to the zero-based parameter index whose
	// unmodified value it carries (for summary guard resolution).
	orig map[mir.LocalID]int
	// negOf maps a local to the local whose boolean negation it holds,
	// used to back-propagate branch assertions through `!x`.
	negOf map[mir.LocalID]mir.LocalID
	// dead marks drop-class roots whose storage or heap is gone.
	dead map[mir.LocalID]bool
	// pts is flow-sensitive points-to with strong updates on full-local
	// assignment. A present key is a known (possibly empty) root set; an
	// absent key means unknown, which every check treats conservatively.
	pts map[mir.LocalID][]mir.LocalID
	// moved marks owners whose heap escaped via into_raw/forget: their
	// StorageDead/Drop no longer frees the class.
	moved map[mir.LocalID]bool
	// owns maps an owner local to the class roots freed when it drops;
	// absent means the default class {self}.
	owns map[mir.LocalID][]mir.LocalID
	// uninit marks class roots whose memory is allocated but not yet
	// initialized (ptr-write/alloc modeling for dfree/uninit).
	uninit map[mir.LocalID]bool
	// dup maps a class root to the ptr::read site that duplicated its
	// ownership; a second kill of the root flags that site.
	dup map[mir.LocalID]SiteKey
}

func newState(body *mir.Body) *state {
	s := &state{
		env:    map[mir.LocalID]string{},
		orig:   map[mir.LocalID]int{},
		negOf:  map[mir.LocalID]mir.LocalID{},
		dead:   map[mir.LocalID]bool{},
		pts:    map[mir.LocalID][]mir.LocalID{},
		moved:  map[mir.LocalID]bool{},
		owns:   map[mir.LocalID][]mir.LocalID{},
		uninit: map[mir.LocalID]bool{},
		dup:    map[mir.LocalID]SiteKey{},
	}
	for i := 0; i < body.ArgCount; i++ {
		l := mir.LocalID(i + 1)
		if isPointer(body.Local(l).Ty) {
			// A pointer param points at (a proxy for) itself, mirroring
			// the flow-insensitive model so summaries line up.
			s.pts[l] = []mir.LocalID{l}
		} else {
			s.orig[l] = i
		}
	}
	return s
}

func (s *state) clone() *state {
	out := &state{
		env:    make(map[mir.LocalID]string, len(s.env)),
		orig:   make(map[mir.LocalID]int, len(s.orig)),
		negOf:  make(map[mir.LocalID]mir.LocalID, len(s.negOf)),
		dead:   make(map[mir.LocalID]bool, len(s.dead)),
		pts:    make(map[mir.LocalID][]mir.LocalID, len(s.pts)),
		moved:  make(map[mir.LocalID]bool, len(s.moved)),
		owns:   make(map[mir.LocalID][]mir.LocalID, len(s.owns)),
		uninit: make(map[mir.LocalID]bool, len(s.uninit)),
		dup:    make(map[mir.LocalID]SiteKey, len(s.dup)),
	}
	for k, v := range s.env {
		out.env[k] = v
	}
	for k, v := range s.orig {
		out.orig[k] = v
	}
	for k, v := range s.negOf {
		out.negOf[k] = v
	}
	for k, v := range s.dead {
		out.dead[k] = v
	}
	for k, v := range s.pts {
		out.pts[k] = append([]mir.LocalID(nil), v...)
	}
	for k, v := range s.moved {
		out.moved[k] = v
	}
	for k, v := range s.owns {
		out.owns[k] = append([]mir.LocalID(nil), v...)
	}
	for k, v := range s.uninit {
		out.uninit[k] = v
	}
	for k, v := range s.dup {
		out.dup[k] = v
	}
	return out
}

// key renders the state canonically so merge points can deduplicate.
func (s *state) key() string {
	var b strings.Builder
	writeIDs := func(tag string, m map[mir.LocalID]bool) {
		ids := make([]int, 0, len(m))
		for k, v := range m {
			if v {
				ids = append(ids, int(k))
			}
		}
		sort.Ints(ids)
		fmt.Fprintf(&b, "%s%v;", tag, ids)
	}
	envKeys := make([]int, 0, len(s.env))
	for k := range s.env {
		envKeys = append(envKeys, int(k))
	}
	sort.Ints(envKeys)
	for _, k := range envKeys {
		fmt.Fprintf(&b, "e%d=%s,", k, s.env[mir.LocalID(k)])
	}
	origKeys := make([]int, 0, len(s.orig))
	for k := range s.orig {
		origKeys = append(origKeys, int(k))
	}
	sort.Ints(origKeys)
	for _, k := range origKeys {
		fmt.Fprintf(&b, "o%d=%d,", k, s.orig[mir.LocalID(k)])
	}
	negKeys := make([]int, 0, len(s.negOf))
	for k := range s.negOf {
		negKeys = append(negKeys, int(k))
	}
	sort.Ints(negKeys)
	for _, k := range negKeys {
		fmt.Fprintf(&b, "n%d=%d,", k, s.negOf[mir.LocalID(k)])
	}
	writeIDs("d", s.dead)
	writeIDs("m", s.moved)
	writeIDs("u", s.uninit)
	ptsKeys := make([]int, 0, len(s.pts))
	for k := range s.pts {
		ptsKeys = append(ptsKeys, int(k))
	}
	sort.Ints(ptsKeys)
	for _, k := range ptsKeys {
		fmt.Fprintf(&b, "p%d=%v,", k, s.pts[mir.LocalID(k)])
	}
	ownKeys := make([]int, 0, len(s.owns))
	for k := range s.owns {
		ownKeys = append(ownKeys, int(k))
	}
	sort.Ints(ownKeys)
	for _, k := range ownKeys {
		fmt.Fprintf(&b, "w%d=%v,", k, s.owns[mir.LocalID(k)])
	}
	dupKeys := make([]int, 0, len(s.dup))
	for k := range s.dup {
		dupKeys = append(dupKeys, int(k))
	}
	sort.Ints(dupKeys)
	for _, k := range dupKeys {
		fmt.Fprintf(&b, "q%d=%s,", k, s.dup[mir.LocalID(k)])
	}
	return b.String()
}

// join merges o into s with path-insensitive (may) semantics: constants
// survive only when both sides agree, deadness and uninitness union,
// points-to unions (dropping to unknown when either side is unknown).
func (s *state) join(o *state) {
	for k, v := range s.env {
		if ov, ok := o.env[k]; !ok || ov != v {
			delete(s.env, k)
		}
	}
	for k, v := range s.orig {
		if ov, ok := o.orig[k]; !ok || ov != v {
			delete(s.orig, k)
		}
	}
	for k, v := range s.negOf {
		if ov, ok := o.negOf[k]; !ok || ov != v {
			delete(s.negOf, k)
		}
	}
	for k, v := range o.dead {
		if v {
			s.dead[k] = true
		}
	}
	for k := range s.moved {
		if !o.moved[k] {
			delete(s.moved, k)
		}
	}
	for k := range s.pts {
		ov, ok := o.pts[k]
		if !ok {
			delete(s.pts, k) // either side unknown -> unknown
			continue
		}
		s.pts[k] = unionIDs(s.pts[k], ov)
	}
	for k, v := range o.uninit {
		if v {
			s.uninit[k] = true
		}
	}
	for k, v := range o.owns {
		s.owns[k] = unionIDs(s.owns[k], v)
	}
	for k, v := range o.dup {
		if prev, ok := s.dup[k]; !ok || v.String() < prev.String() {
			s.dup[k] = v
		}
	}
}

func unionIDs(a, b []mir.LocalID) []mir.LocalID {
	seen := make(map[mir.LocalID]bool, len(a)+len(b))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]mir.LocalID, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// walker drives the bounded path-sensitive fixpoint.
type walker struct {
	body      *mir.Body
	opt       Options
	res       *Result
	in        map[mir.BlockID][]*state
	inKeys    map[mir.BlockID]map[string]bool
	collapsed map[mir.BlockID]bool
	visits    map[mir.BlockID]int
	work      []mir.BlockID
	queued    map[mir.BlockID]bool
}

// Analyze runs the path-sensitive walk over one function body.
func Analyze(body *mir.Body, opt Options) *Result {
	if opt.MaxStates <= 0 {
		opt.MaxStates = DefaultMaxStates
	}
	if opt.MaxVisits <= 0 {
		opt.MaxVisits = DefaultMaxVisits
	}
	res := &Result{Sites: map[SiteKey]*Verdict{}, Summary: &FnSummary{}}
	if body == nil || len(body.Blocks) == 0 {
		return res
	}
	w := &walker{
		body:      body,
		opt:       opt,
		res:       res,
		in:        map[mir.BlockID][]*state{},
		inKeys:    map[mir.BlockID]map[string]bool{},
		collapsed: map[mir.BlockID]bool{},
		visits:    map[mir.BlockID]int{},
		queued:    map[mir.BlockID]bool{},
	}
	w.push(0, newState(body))
	for len(w.work) > 0 && !res.Bailed {
		b := w.work[0]
		w.work = w.work[1:]
		w.queued[b] = false
		w.visits[b]++
		if w.visits[b] > opt.MaxVisits {
			res.Bailed = true
			break
		}
		states := w.in[b]
		if w.collapsed[b] {
			states = states[:1]
		}
		for _, st := range states {
			w.walkBlock(b, st.clone())
		}
	}
	if res.Bailed {
		res.Summary.Opaque = true
	}
	res.Summary.normalize()
	return res
}

// push adds a state to a block's input set, collapsing past the cap, and
// queues the block when the set changed.
func (w *walker) push(b mir.BlockID, s *state) {
	if int(b) >= len(w.body.Blocks) {
		return
	}
	if w.collapsed[b] {
		joined := w.in[b][0]
		before := joined.key()
		joined.join(s)
		if joined.key() != before {
			w.enqueue(b)
		}
		return
	}
	k := s.key()
	keys := w.inKeys[b]
	if keys == nil {
		keys = map[string]bool{}
		w.inKeys[b] = keys
	}
	if keys[k] {
		return
	}
	keys[k] = true
	w.in[b] = append(w.in[b], s)
	if len(w.in[b]) > w.opt.MaxStates {
		// Fall back to joined (path-insensitive) semantics for this block.
		joined := w.in[b][0].clone()
		for _, o := range w.in[b][1:] {
			joined.join(o)
		}
		w.in[b] = []*state{joined}
		w.collapsed[b] = true
	}
	w.enqueue(b)
}

func (w *walker) enqueue(b mir.BlockID) {
	if !w.queued[b] {
		w.queued[b] = true
		w.work = append(w.work, b)
	}
}

func (w *walker) verdict(k SiteKey) *Verdict {
	v, ok := w.res.Sites[k]
	if !ok {
		v = &Verdict{}
		w.res.Sites[k] = v
	}
	return v
}

// walkBlock interprets one block under one path state and pushes the
// resulting states to the successors.
func (w *walker) walkBlock(b mir.BlockID, s *state) {
	blk := w.body.Blocks[b]
	for i, st := range blk.Stmts {
		w.stmt(s, b, i, st)
	}
	w.terminator(s, b, blk.Term)
}

func (w *walker) stmt(s *state, b mir.BlockID, i int, st mir.Statement) {
	switch st := st.(type) {
	case mir.StorageLive:
		delete(s.dead, st.Local)
		delete(s.moved, st.Local)
	case mir.StorageDead:
		if !s.moved[st.Local] {
			s.dead[st.Local] = true
		}
	case mir.Assign:
		// Reads first: any deref on the rvalue side is a site.
		forEachOperandPlace(st.Rvalue, func(pl mir.Place) {
			if pl.HasDeref() {
				w.derefSite(s, SiteKey{Block: b, Stmt: i, Local: pl.Local})
			}
		})
		if st.Place.IsLocal() {
			w.assignLocal(s, st.Place.Local, st.Rvalue)
			return
		}
		if st.Place.HasDeref() {
			// Write through a pointer: a site (dangling write / invalid
			// free of a garbage previous value), then the pointee class
			// becomes initialized.
			w.derefSite(s, SiteKey{Block: b, Stmt: i, Local: st.Place.Local})
			if roots, ok := s.pts[st.Place.Local]; ok {
				for _, r := range roots {
					delete(s.uninit, r)
				}
			}
		}
		// Projection writes (x.f = ...) are weak updates: no class facts
		// change.
	}
}

// derefSite evaluates one pointer access under the current state and
// accumulates the verdict. checkUninit is false for accesses that
// initialize rather than read the pointee (ptr::write).
func (w *walker) derefSite(s *state, k SiteKey) { w.derefSiteOpts(s, k, true) }

func (w *walker) derefSiteOpts(s *state, k SiteKey, checkUninit bool) {
	v := w.verdict(k)
	roots, known := s.pts[k.Local]
	if !known {
		v.MayUseDead = true
		if checkUninit {
			v.MayUninit = true
		}
		w.noteParamDeref(s, k.Local)
		return
	}
	for _, r := range roots {
		if r == k.Local {
			continue
		}
		if s.dead[r] {
			v.MayUseDead = true
		}
		if checkUninit && s.uninit[r] {
			v.MayUninit = true
		}
	}
	w.noteParamDeref(s, k.Local)
}

// noteParamDeref records "this function may dereference parameter i" in
// the summary, guarded by the parameter-value facts of the current path.
func (w *walker) noteParamDeref(s *state, l mir.LocalID) {
	params := map[int]bool{}
	if idx, ok := w.paramIndex(l); ok {
		params[idx] = true
	}
	roots, known := s.pts[l]
	for _, r := range roots {
		if idx, ok := w.paramIndex(r); ok {
			params[idx] = true
		}
	}
	if !known && len(params) == 0 {
		// Unknown points-to: the pointer may alias any parameter. Keep
		// the whole summary conservative.
		w.res.Summary.Opaque = true
		return
	}
	if len(params) == 0 {
		return
	}
	conds := w.pathConds(s)
	for idx := range params {
		w.res.Summary.addSite(idx, conds)
	}
}

// pathConds extracts the parameter-value assumptions of the current path.
func (w *walker) pathConds(s *state) CondSet {
	vals := map[int]string{}
	for l, v := range s.env {
		if idx, ok := w.valueParamIndex(s, l); ok {
			if prev, seen := vals[idx]; seen && prev != v {
				continue // contradictory facts: drop the weaker one
			}
			vals[idx] = v
		}
	}
	conds := make(CondSet, 0, len(vals))
	for idx, v := range vals {
		conds = append(conds, Cond{Param: idx, Value: v})
	}
	sort.Slice(conds, func(i, j int) bool { return conds[i].Param < conds[j].Param })
	return conds
}

// paramIndex maps a pointer-typed parameter local to its index.
func (w *walker) paramIndex(l mir.LocalID) (int, bool) {
	if l >= 1 && int(l) <= w.body.ArgCount {
		return int(l) - 1, true
	}
	return 0, false
}

// valueParamIndex maps a local carrying an unmodified parameter value to
// that parameter's index.
func (w *walker) valueParamIndex(s *state, l mir.LocalID) (int, bool) {
	if idx, ok := w.paramIndex(l); ok {
		return idx, true
	}
	if idx, ok := s.orig[l]; ok {
		return idx, true
	}
	return 0, false
}

// assignLocal is the strong-update transfer for `dest = rvalue`.
func (w *walker) assignLocal(s *state, dest mir.LocalID, rv mir.Rvalue) {
	delete(s.env, dest)
	delete(s.orig, dest)
	delete(s.negOf, dest)
	delete(s.dead, dest)
	delete(s.moved, dest)
	delete(s.owns, dest)
	delete(s.pts, dest)
	switch rv := rv.(type) {
	case mir.Use:
		switch op := rv.X.(type) {
		case mir.Const:
			s.env[dest] = op.Text
			s.pts[dest] = []mir.LocalID{}
		case mir.Copy:
			w.copyLocal(s, dest, op.Place, false)
		case mir.Move:
			w.copyLocal(s, dest, op.Place, true)
		}
	case mir.Ref:
		s.pts[dest] = w.rootsOfPlace(s, rv.Place)
	case mir.AddrOf:
		s.pts[dest] = w.rootsOfPlace(s, rv.Place)
	case mir.Cast:
		if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
			w.copyLocal(s, dest, pl, mir.IsMove(rv.X))
		}
	case mir.UnaryOp:
		if rv.Op == "Not" {
			if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
				if v, known := s.env[pl.Local]; known {
					s.env[dest] = negBool(v)
				} else {
					s.negOf[dest] = pl.Local
				}
			}
		}
		s.pts[dest] = []mir.LocalID{}
	case mir.BinaryOp:
		s.pts[dest] = []mir.LocalID{}
	case mir.Aggregate:
		// Fresh value; owns defaults to {dest}.
	}
}

// copyLocal transfers facts for `dest = copy/move src` (whole places
// only; projections lose tracking).
func (w *walker) copyLocal(s *state, dest mir.LocalID, src mir.Place, isMove bool) {
	if !src.IsLocal() {
		return // projection or deref read: dest value untracked
	}
	l := src.Local
	if v, ok := s.env[l]; ok {
		s.env[dest] = v
	}
	if idx, ok := w.valueParamIndex(s, l); ok {
		s.orig[dest] = idx
	}
	if n, ok := s.negOf[l]; ok {
		s.negOf[dest] = n
	}
	if roots, ok := s.pts[l]; ok {
		s.pts[dest] = append([]mir.LocalID(nil), roots...)
	}
	if isMove && ownsHeap(w.body.Local(l).Ty) {
		// Moving an owner transfers its drop class; the destination also
		// becomes a root (pointers derived from it must die with it), and
		// the source's scope-end StorageDead no longer frees the heap —
		// a move transfers ownership, it never frees.
		s.owns[dest] = unionIDs(w.ownsOf(s, l), []mir.LocalID{dest})
		s.moved[l] = true
	}
	if site, ok := s.dup[l]; ok && isMove {
		s.dup[dest] = site
	}
}

func (w *walker) rootsOfPlace(s *state, p mir.Place) []mir.LocalID {
	if !p.HasDeref() {
		return []mir.LocalID{p.Local}
	}
	if roots, ok := s.pts[p.Local]; ok {
		return append([]mir.LocalID(nil), roots...)
	}
	return nil // unknown stays unknown: delete below
}

// ownsOf returns the drop class of an owner local, defaulting to {self}.
func (w *walker) ownsOf(s *state, l mir.LocalID) []mir.LocalID {
	if roots, ok := s.owns[l]; ok {
		return roots
	}
	return []mir.LocalID{l}
}

func negBool(v string) string {
	switch v {
	case "true":
		return "false"
	case "false":
		return "true"
	}
	return ""
}

func (w *walker) terminator(s *state, b mir.BlockID, term mir.Terminator) {
	switch term := term.(type) {
	case nil:
		return
	case mir.Goto:
		w.push(term.Target, s)
	case mir.Drop:
		w.dropPlace(s, b, term.Place)
		w.push(term.Target, s)
	case mir.Call:
		w.call(s, b, term)
		w.push(term.Target, s)
	case mir.SwitchInt:
		w.switchInt(s, b, term)
	case mir.Return, mir.Unreachable:
		return
	default:
		for _, t := range term.Successors() {
			w.push(t, s.clone())
		}
	}
}

// dropPlace models running a place's destructor: every root of the
// owner's drop class dies; a re-kill through a ptr::read duplicate is a
// double free charged to the duplicating site.
func (w *walker) dropPlace(s *state, b mir.BlockID, p mir.Place) {
	if !p.IsLocal() {
		return
	}
	l := p.Local
	if s.moved[l] {
		return // ownership escaped via into_raw/forget: drop frees nothing
	}
	if !ownsHeap(w.body.Local(l).Ty) {
		return
	}
	for _, r := range w.ownsOf(s, l) {
		if s.dead[r] {
			if site, ok := s.dup[r]; ok {
				w.verdict(site).MayDoubleFree = true
			}
		}
		s.dead[r] = true
	}
}

// call models a call terminator: argument sites, intrinsic effects, and
// context-sensitive callee-summary evaluation.
func (w *walker) call(s *state, b mir.BlockID, c mir.Call) {
	// Explicit derefs in argument position are always sites.
	for _, a := range c.Args {
		if pl, ok := mir.OperandPlace(a); ok && pl.HasDeref() {
			w.derefSite(s, SiteKey{Block: b, Stmt: -1, Local: pl.Local})
		}
	}
	switch c.Intrinsic {
	case mir.IntrinsicDrop:
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok {
				w.dropPlace(s, b, pl)
			}
		}
	case mir.IntrinsicForget:
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				s.moved[pl.Local] = true
			}
		}
	case mir.IntrinsicIntoRaw:
		// into_raw(owner) releases ownership as a raw pointer: the owner's
		// scope-end drop/StorageDead no longer frees the class, and the
		// result aliases the class roots — the round-trip survives.
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				class := w.ownsOf(s, pl.Local)
				// The whole class escapes: lowering may have move-chained
				// the owner through temporaries, each of which gets a
				// scope-end StorageDead that must no longer kill the heap.
				s.moved[pl.Local] = true
				for _, r := range class {
					s.moved[r] = true
				}
				if c.Dest.IsLocal() {
					w.freshDest(s, c.Dest.Local)
					s.pts[c.Dest.Local] = append([]mir.LocalID(nil), class...)
				}
				return
			}
		}
		w.opaqueDest(s, c.Dest)
	case mir.IntrinsicFromRaw:
		// from_raw(ptr) re-adopts the class: dropping the new owner frees
		// the original roots.
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() && c.Dest.IsLocal() {
				w.freshDest(s, c.Dest.Local)
				if roots, ok := s.pts[pl.Local]; ok {
					s.owns[c.Dest.Local] = unionIDs(roots, []mir.LocalID{c.Dest.Local})
				}
				return
			}
		}
		w.opaqueDest(s, c.Dest)
	case mir.IntrinsicAlloc:
		if c.Dest.IsLocal() {
			w.freshDest(s, c.Dest.Local)
			s.pts[c.Dest.Local] = []mir.LocalID{c.Dest.Local}
			s.uninit[c.Dest.Local] = true
		}
	case mir.IntrinsicPtrWrite:
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				// The write is the initializer: only a dead pointee is a
				// bug here, uninitness is what it cures.
				w.derefSiteOpts(s, SiteKey{Block: b, Stmt: -1, Local: pl.Local}, false)
				if roots, ok := s.pts[pl.Local]; ok {
					for _, r := range roots {
						delete(s.uninit, r)
					}
				}
			}
		}
		w.opaqueDest(s, c.Dest)
	case mir.IntrinsicPtrRead:
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				site := SiteKey{Block: b, Stmt: -1, Local: pl.Local}
				w.derefSite(s, site)
				roots, known := s.pts[pl.Local]
				if !known {
					w.verdict(site).MayDoubleFree = true
				} else if c.Dest.IsLocal() {
					// The result duplicates ownership of the pointee:
					// dropping both copies double-frees the class.
					w.freshDest(s, c.Dest.Local)
					owned := []mir.LocalID{c.Dest.Local}
					for _, r := range roots {
						if r == pl.Local {
							continue
						}
						s.dup[r] = site
						owned = unionIDs(owned, []mir.LocalID{r})
					}
					s.owns[c.Dest.Local] = owned
					return
				}
			}
		}
		w.opaqueDest(s, c.Dest)
	case mir.IntrinsicDealloc:
		if len(c.Args) > 0 {
			if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
				if roots, ok := s.pts[pl.Local]; ok {
					for _, r := range roots {
						if r != pl.Local {
							s.dead[r] = true
						}
					}
				}
			}
		}
		w.opaqueDest(s, c.Dest)
	default:
		w.externalCall(s, b, c)
	}
}

// externalCall models a non-intrinsic call: evaluate the callee's
// parameter-dereference summary (context-sensitively, against this call's
// constant arguments) or fall back to the paper's conservative rule for
// unknown callees.
func (w *walker) externalCall(s *state, b mir.BlockID, c mir.Call) {
	name := calleeName(c)
	var sum *FnSummary
	if w.opt.Lookup != nil && name != "" {
		if got, ok := w.opt.Lookup(name); ok {
			sum = got
		}
	}
	for i, a := range c.Args {
		pl, ok := mir.OperandPlace(a)
		if !ok || !pl.IsLocal() {
			continue
		}
		ty := w.body.Local(pl.Local).Ty
		if !isPointer(ty) {
			continue
		}
		derefs := false
		switch {
		case sum == nil:
			// Unknown callee: conservatively assume raw pointers are
			// dereferenced (the paper-faithful default rule).
			_, isRaw := ty.(*types.RawPtr)
			derefs = isRaw
		case sum.Opaque:
			derefs = true
		default:
			derefs = sum.derefsParam(i, func(cond Cond) condTruth {
				return w.argTruth(s, c, cond)
			})
		}
		if derefs {
			w.derefSite(s, SiteKey{Block: b, Stmt: -1, Local: pl.Local})
		} else {
			// Record a proven-safe site so the detector's default
			// call-site finding has something to be refuted by.
			w.verdict(SiteKey{Block: b, Stmt: -1, Local: pl.Local})
			w.notePassThrough(s, c, i, pl.Local, sum)
		}
	}
	w.opaqueDest(s, c.Dest)
}

// notePassThrough propagates callee guards into this function's summary
// when a parameter is forwarded to a callee that may dereference it under
// conditions this caller cannot decide.
func (w *walker) notePassThrough(s *state, c mir.Call, argIdx int, l mir.LocalID, sum *FnSummary) {
	if sum == nil || sum.Opaque {
		return
	}
	params := map[int]bool{}
	if idx, ok := w.paramIndex(l); ok {
		params[idx] = true
	}
	if roots, ok := s.pts[l]; ok {
		for _, r := range roots {
			if idx, ok := w.paramIndex(r); ok {
				params[idx] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}
	guard, ok := sum.Params[argIdx]
	if !ok {
		return
	}
	for _, site := range guard {
		translated, ok := w.translateConds(s, c, site)
		if !ok {
			continue // guard refuted at this call site
		}
		merged := unionConds(translated, w.pathConds(s))
		for idx := range params {
			w.res.Summary.addSite(idx, merged)
		}
	}
}

// translateConds rewrites a callee guard into caller terms: conditions on
// constant arguments evaluate away, conditions on forwarded parameters
// translate, anything else drops (stays satisfiable).
func (w *walker) translateConds(s *state, c mir.Call, conds CondSet) (CondSet, bool) {
	out := CondSet{}
	for _, cond := range conds {
		switch w.argTruth(s, c, cond) {
		case condFalse:
			return nil, false
		case condTrue:
			continue
		}
		if cond.Param < len(c.Args) {
			if pl, ok := mir.OperandPlace(c.Args[cond.Param]); ok && pl.IsLocal() {
				if idx, ok := w.valueParamIndex(s, pl.Local); ok {
					out = append(out, Cond{Param: idx, Value: cond.Value})
					continue
				}
			}
		}
		// Undecidable: drop the condition (widens toward "may deref").
	}
	return out, true
}

type condTruth int

const (
	condUnknown condTruth = iota
	condTrue
	condFalse
)

// argTruth evaluates one callee guard condition against this call's
// arguments under the current path state.
func (w *walker) argTruth(s *state, c mir.Call, cond Cond) condTruth {
	if cond.Param >= len(c.Args) {
		return condUnknown
	}
	switch op := c.Args[cond.Param].(type) {
	case mir.Const:
		if op.Text == cond.Value {
			return condTrue
		}
		return condFalse
	case mir.Copy:
		return w.placeTruth(s, op.Place, cond.Value)
	case mir.Move:
		return w.placeTruth(s, op.Place, cond.Value)
	}
	return condUnknown
}

func (w *walker) placeTruth(s *state, pl mir.Place, want string) condTruth {
	if !pl.IsLocal() {
		return condUnknown
	}
	if v, ok := s.env[pl.Local]; ok && v != "" {
		if v == want {
			return condTrue
		}
		return condFalse
	}
	return condUnknown
}

// freshDest resets a call destination to an untracked fresh value.
func (w *walker) freshDest(s *state, dest mir.LocalID) {
	delete(s.env, dest)
	delete(s.orig, dest)
	delete(s.negOf, dest)
	delete(s.dead, dest)
	delete(s.moved, dest)
	delete(s.owns, dest)
	delete(s.pts, dest)
}

// opaqueDest resets a call destination whose value is unknown.
func (w *walker) opaqueDest(s *state, dest mir.Place) {
	if dest.IsLocal() {
		w.freshDest(s, dest.Local)
	}
}

// switchInt forks per outcome, asserting the discriminant's value on each
// edge and pruning edges the current environment proves infeasible —
// branch-correlated drops and derefs stop bleeding into each other here.
func (w *walker) switchInt(s *state, b mir.BlockID, term mir.SwitchInt) {
	// Constant discriminant: follow the single matching edge.
	if c, ok := term.Disc.(mir.Const); ok {
		for _, t := range term.Targets {
			if t.Value == c.Text {
				w.push(t.Block, s)
				return
			}
		}
		w.push(term.Otherwise, s)
		return
	}
	pl, ok := mir.OperandPlace(term.Disc)
	if !ok || !pl.IsLocal() {
		for _, t := range term.Successors() {
			w.push(t, s.clone())
		}
		return
	}
	l := pl.Local
	if v, known := s.env[l]; known && v != "" {
		for _, t := range term.Targets {
			if t.Value == v {
				w.push(t.Block, s)
				return
			}
		}
		w.push(term.Otherwise, s)
		return
	}
	// Unknown discriminant: fork, asserting the tested value on each
	// target edge and (for booleans) its complement on the otherwise
	// edge.
	for _, t := range term.Targets {
		next := s.clone()
		w.assertValue(next, l, t.Value)
		w.push(t.Block, next)
	}
	other := s.clone()
	if len(term.Targets) == 1 && isBoolLocal(w.body, l) {
		w.assertValue(other, l, negBool(term.Targets[0].Value))
	}
	w.push(term.Otherwise, other)
}

// assertValue records a branch assertion, back-propagating through one
// level of boolean negation.
func (w *walker) assertValue(s *state, l mir.LocalID, v string) {
	if v == "" {
		return
	}
	s.env[l] = v
	if src, ok := s.negOf[l]; ok {
		if nv := negBool(v); nv != "" {
			if _, has := s.env[src]; !has {
				s.env[src] = nv
			}
		}
	}
}

func isBoolLocal(body *mir.Body, l mir.LocalID) bool {
	p, ok := body.Local(l).Ty.(*types.Prim)
	return ok && p.Kind == types.Bool
}

func forEachOperandPlace(rv mir.Rvalue, fn func(mir.Place)) {
	visitOp := func(op mir.Operand) {
		if pl, ok := mir.OperandPlace(op); ok {
			fn(pl)
		}
	}
	switch rv := rv.(type) {
	case mir.Use:
		visitOp(rv.X)
	case mir.Cast:
		visitOp(rv.X)
	case mir.BinaryOp:
		visitOp(rv.L)
		visitOp(rv.R)
	case mir.UnaryOp:
		visitOp(rv.X)
	case mir.Aggregate:
		for _, op := range rv.Ops {
			visitOp(op)
		}
	case mir.Discriminant:
		fn(rv.Place)
	}
}

func calleeName(c mir.Call) string {
	if c.Def != nil {
		return c.Def.Qualified
	}
	return c.Callee
}

func isPointer(t types.Type) bool {
	switch t.(type) {
	case *types.RawPtr, *types.Ref:
		return true
	}
	return false
}

// ownsHeap mirrors the default uaf detector's rule exactly — the walk's
// dead set must over-approximate the default detector's for refutations
// to stay sound: dropping the value frees heap memory (owning containers
// and user types that may own heap through fields), excluding lock guards
// whose drop releases a lock instead.
func ownsHeap(t types.Type) bool {
	if types.IsOwningContainer(t) {
		return true
	}
	if n, ok := t.(*types.Named); ok {
		switch n.Name {
		case "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard":
			return false
		}
		return true
	}
	return false
}
