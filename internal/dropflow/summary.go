package dropflow

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/callgraph"
	"rustprobe/internal/mir"
	"rustprobe/internal/summary"
)

// Cond is one guard condition: "parameter Param holds constant Value".
type Cond struct {
	Param int
	Value string
}

// CondSet is a conjunction of conditions under which a dereference is
// reachable. The empty set means unconditionally reachable.
type CondSet []Cond

// Guard is a disjunction of CondSets: the parameter is dereferenced when
// any member set is satisfied.
type Guard []CondSet

// maxGuardSites caps how many distinct guarded sites a parameter keeps
// before collapsing to an unconditional dereference.
const maxGuardSites = 4

// FnSummary is the caller-indexed parameter-dereference summary of one
// function: which parameters it (transitively) dereferences, under which
// argument-value guards. Opaque marks a function the walk could not
// reason about — callers must assume every pointer argument is
// dereferenced unconditionally.
type FnSummary struct {
	Opaque bool
	Params map[int]Guard
}

// addSite records one guarded dereference of parameter idx.
func (f *FnSummary) addSite(idx int, conds CondSet) {
	if f.Params == nil {
		f.Params = map[int]Guard{}
	}
	guard := f.Params[idx]
	if len(guard) == 1 && len(guard[0]) == 0 {
		return // already unconditional
	}
	if len(conds) == 0 {
		f.Params[idx] = Guard{CondSet{}}
		return
	}
	key := conds.String()
	for _, existing := range guard {
		if existing.String() == key {
			return
		}
	}
	guard = append(guard, conds)
	if len(guard) > maxGuardSites {
		guard = Guard{CondSet{}}
	}
	f.Params[idx] = guard
}

// derefsParam reports whether parameter idx may be dereferenced at a call
// site, evaluating each guard condition through eval (which resolves it
// against the call's arguments). Undecidable conditions count as
// satisfiable.
func (f *FnSummary) derefsParam(idx int, eval func(Cond) condTruth) bool {
	if f.Opaque {
		return true
	}
	guard, ok := f.Params[idx]
	if !ok {
		return false
	}
	for _, conds := range guard {
		satisfied := true
		for _, c := range conds {
			if eval(c) == condFalse {
				satisfied = false
				break
			}
		}
		if satisfied {
			return true
		}
	}
	return false
}

// normalize sorts the summary into canonical form so String is stable.
func (f *FnSummary) normalize() {
	for idx, guard := range f.Params {
		sort.Slice(guard, func(i, j int) bool { return guard[i].String() < guard[j].String() })
		f.Params[idx] = guard
	}
}

func (c CondSet) String() string {
	parts := make([]string, len(c))
	for i, cond := range c {
		parts[i] = fmt.Sprintf("p%d=%s", cond.Param, cond.Value)
	}
	return strings.Join(parts, "&")
}

// String renders the summary canonically (used as the fixpoint equality
// check and in tests).
func (f *FnSummary) String() string {
	if f == nil {
		return "<nil>"
	}
	var b strings.Builder
	if f.Opaque {
		b.WriteString("opaque;")
	}
	idxs := make([]int, 0, len(f.Params))
	for idx := range f.Params {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		guard := f.Params[idx]
		parts := make([]string, len(guard))
		for i, conds := range guard {
			if len(conds) == 0 {
				parts[i] = "always"
			} else {
				parts[i] = conds.String()
			}
		}
		sort.Strings(parts)
		fmt.Fprintf(&b, "p%d:[%s];", idx, strings.Join(parts, "|"))
	}
	return b.String()
}

// Equal reports canonical equality.
func (f *FnSummary) Equal(o *FnSummary) bool { return f.String() == o.String() }

// clone deep-copies the summary (guards are shared copy-on-write through
// addSite, so a full copy keeps fixpoint iterations independent).
func (f *FnSummary) clone() *FnSummary {
	out := &FnSummary{Opaque: f.Opaque}
	if f.Params != nil {
		out.Params = make(map[int]Guard, len(f.Params))
		for idx, guard := range f.Params {
			g := make(Guard, len(guard))
			for i, conds := range guard {
				g[i] = append(CondSet(nil), conds...)
			}
			out.Params[idx] = g
		}
	}
	return out
}

func unionConds(a, b CondSet) CondSet {
	seen := map[string]bool{}
	out := CondSet{}
	for _, c := range append(append(CondSet{}, a...), b...) {
		k := fmt.Sprintf("p%d=%s", c.Param, c.Value)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// ComputeSummaries runs the context-sensitive parameter-dereference
// summary fixpoint bottom-up over the call graph's SCC condensation.
// Functions in SCCs that hit the iteration cap, and functions whose walk
// bailed, come back Opaque so callers stay conservative.
func ComputeSummaries(bodies map[string]*mir.Body, g *callgraph.Graph) map[string]*FnSummary {
	prob := &summary.Problem[*FnSummary]{
		Bottom: func(fn string) *FnSummary { return &FnSummary{} },
		Transfer: func(fn string, get summary.Lookup[*FnSummary]) *FnSummary {
			body := bodies[fn]
			if body == nil {
				return &FnSummary{}
			}
			res := Analyze(body, Options{Lookup: func(callee string) (*FnSummary, bool) {
				s, ok := get(callee)
				if !ok || s == nil {
					return nil, false
				}
				return s, true
			}})
			return res.Summary
		},
		Equal: func(a, b *FnSummary) bool { return a.Equal(b) },
	}
	res := summary.Compute(g, prob)
	out := make(map[string]*FnSummary, len(res.Summaries))
	for fn, s := range res.Summaries {
		if res.Truncated[fn] {
			// A sound-so-far under-approximation is the wrong direction
			// for refutation: replace with full conservatism.
			out[fn] = &FnSummary{Opaque: true}
			continue
		}
		out[fn] = s
	}
	return out
}
