// Package callgraph builds the static call graph over lowered MIR bodies,
// used by the inter-procedural parts of the double-lock and use-after-free
// detectors.
package callgraph

import (
	"sort"

	"rustprobe/internal/mir"
)

// Edge is one call site.
type Edge struct {
	Caller string
	Callee string
	Site   mir.Call
	Block  mir.BlockID
}

// Graph is the program call graph.
type Graph struct {
	Bodies map[string]*mir.Body
	// Callees maps a function to its outgoing edges in block order.
	Callees map[string][]Edge
	// Callers maps a function to its incoming edges.
	Callers map[string][]Edge
}

// Build constructs the call graph. Only calls resolved to a known body (by
// Def or by name match) produce edges.
func Build(bodies map[string]*mir.Body) *Graph {
	g := &Graph{
		Bodies:  bodies,
		Callees: map[string][]Edge{},
		Callers: map[string][]Edge{},
	}
	for name, body := range bodies {
		for _, blk := range body.Blocks {
			c, ok := blk.Term.(mir.Call)
			if !ok {
				continue
			}
			calleeName := ""
			if c.Def != nil {
				calleeName = c.Def.Qualified
			} else if _, exists := bodies[c.Callee]; exists {
				calleeName = c.Callee
			}
			if calleeName == "" {
				continue
			}
			if _, exists := bodies[calleeName]; !exists {
				continue
			}
			e := Edge{Caller: name, Callee: calleeName, Site: c, Block: blk.ID}
			g.Callees[name] = append(g.Callees[name], e)
			g.Callers[calleeName] = append(g.Callers[calleeName], e)
		}
	}
	return g
}

// Names returns all function names in sorted order.
func (g *Graph) Names() []string {
	out := make([]string, 0, len(g.Bodies))
	for n := range g.Bodies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TransitiveCallees returns every function reachable from start, excluding
// start itself unless it is recursive.
func (g *Graph) TransitiveCallees(start string) map[string]bool {
	seen := map[string]bool{}
	var work []string
	for _, e := range g.Callees[start] {
		if !seen[e.Callee] {
			seen[e.Callee] = true
			work = append(work, e.Callee)
		}
	}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.Callees[cur] {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}

// PostOrder returns functions in callee-before-caller order (cycles broken
// arbitrarily but deterministically), for bottom-up summary propagation.
func (g *Graph) PostOrder() []string {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(n string) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, e := range g.Callees[n] {
			if state[e.Callee] == 0 {
				visit(e.Callee)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range g.Names() {
		visit(n)
	}
	return order
}
