// Package callgraph builds the static call graph over lowered MIR bodies,
// used by the inter-procedural parts of the double-lock and use-after-free
// detectors.
package callgraph

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rustprobe/internal/mir"
)

// Edge is one call site.
type Edge struct {
	Caller string
	Callee string
	Site   mir.Call
	Block  mir.BlockID
}

// Graph is the program call graph.
type Graph struct {
	Bodies map[string]*mir.Body
	// Callees maps a function to its outgoing edges in block order.
	Callees map[string][]Edge
	// Callers maps a function to its incoming edges.
	Callers map[string][]Edge
	// Unresolved maps a function to the callee names its calls failed to
	// resolve (no matching body). Patch uses it to decide whether an
	// unchanged caller must be rescanned: its cached edges go stale only
	// if one of these names has since gained a body.
	Unresolved map[string][]string
}

// Build constructs the call graph. Only calls resolved to a known body (by
// Def or by name match) produce edges.
func Build(bodies map[string]*mir.Body) *Graph {
	g := &Graph{
		Bodies:     bodies,
		Callees:    map[string][]Edge{},
		Callers:    map[string][]Edge{},
		Unresolved: map[string][]string{},
	}
	for name, body := range bodies {
		g.scan(name, body)
	}
	g.invertCallers()
	return g
}

// scan appends name's outgoing edges and unresolved callee names.
func (g *Graph) scan(name string, body *mir.Body) {
	for _, blk := range body.Blocks {
		c, ok := blk.Term.(mir.Call)
		if !ok {
			continue
		}
		calleeName := ""
		if c.Def != nil {
			calleeName = c.Def.Qualified
		} else if _, exists := g.Bodies[c.Callee]; exists {
			calleeName = c.Callee
		}
		if calleeName == "" {
			if c.Callee != "" {
				g.Unresolved[name] = append(g.Unresolved[name], c.Callee)
			}
			continue
		}
		if _, exists := g.Bodies[calleeName]; !exists {
			g.Unresolved[name] = append(g.Unresolved[name], calleeName)
			continue
		}
		e := Edge{Caller: name, Callee: calleeName, Site: c, Block: blk.ID}
		g.Callees[name] = append(g.Callees[name], e)
	}
}

// invertCallers derives the incoming-edge index from Callees.
func (g *Graph) invertCallers() {
	g.Callers = map[string][]Edge{}
	for _, name := range g.Names() {
		for _, e := range g.Callees[name] {
			g.Callers[e.Callee] = append(g.Callers[e.Callee], e)
		}
	}
}

// Patch builds the graph for bodies by reusing prev's per-caller edge
// lists wherever they are provably still correct, rescanning only:
//
//   - functions in changed (re-lowered bodies: new call terminators);
//   - functions whose previously unresolved callee names now have a
//     body (a resolution that flips without the caller changing);
//   - functions absent from prev.
//
// Cached edges to bodies that vanished are dropped. The result is
// byte-equivalent to Build(bodies) — the debug cross-check in the
// session compares fingerprints to enforce exactly that.
func Patch(prev *Graph, bodies map[string]*mir.Body, changed map[string]bool) *Graph {
	if prev == nil {
		return Build(bodies)
	}
	g := &Graph{
		Bodies:     bodies,
		Callees:    map[string][]Edge{},
		Callers:    map[string][]Edge{},
		Unresolved: map[string][]string{},
	}
	for name, body := range bodies {
		if changed[name] || prev.Bodies[name] != body {
			g.scan(name, body)
			continue
		}
		rescan := false
		for _, u := range prev.Unresolved[name] {
			if _, exists := bodies[u]; exists {
				rescan = true
				break
			}
		}
		if rescan {
			g.scan(name, body)
			continue
		}
		if u := prev.Unresolved[name]; len(u) > 0 {
			g.Unresolved[name] = u
		}
		cached := prev.Callees[name]
		keep := cached
		for i, e := range cached {
			if _, exists := bodies[e.Callee]; !exists {
				// Rare: copy-on-write only when an edge must go.
				keep = make([]Edge, 0, len(cached)-1)
				keep = append(keep, cached[:i]...)
				for _, e2 := range cached[i+1:] {
					if _, exists := bodies[e2.Callee]; exists {
						keep = append(keep, e2)
					} else {
						g.Unresolved[name] = append(g.Unresolved[name], e2.Callee)
					}
				}
				g.Unresolved[name] = append(g.Unresolved[name], e.Callee)
				break
			}
		}
		if len(keep) > 0 {
			g.Callees[name] = keep
		}
	}
	g.invertCallers()
	return g
}

// Fingerprint renders the graph's resolved structure as a stable hash:
// sorted callers, edges in block order with call spans. Two graphs over
// the same bodies fingerprint equal iff their edge sets match — the
// byte-equality oracle for Patch against Build.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, name := range g.Names() {
		fmt.Fprintf(h, "%s\n", name)
		for _, e := range g.Callees[name] {
			fmt.Fprintf(h, "  %s>%s@%d:%d\n", e.Caller, e.Callee, e.Block, e.Site.Span.Start)
		}
	}
	return h.Sum64()
}

// Names returns all function names in sorted order.
func (g *Graph) Names() []string {
	out := make([]string, 0, len(g.Bodies))
	for n := range g.Bodies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TransitiveCallees returns every function reachable from start, excluding
// start itself unless it is recursive.
func (g *Graph) TransitiveCallees(start string) map[string]bool {
	seen := map[string]bool{}
	var work []string
	for _, e := range g.Callees[start] {
		if !seen[e.Callee] {
			seen[e.Callee] = true
			work = append(work, e.Callee)
		}
	}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.Callees[cur] {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}

// TransitiveCallers returns every function from which any of the start
// functions is reachable, excluding the starts themselves unless they
// participate in a cycle reaching a start. This is the "dirty closure"
// primitive of incremental analysis: when a function's body changes,
// exactly its transitive callers can observe different summaries.
func (g *Graph) TransitiveCallers(starts ...string) map[string]bool {
	seen := map[string]bool{}
	var work []string
	for _, s := range starts {
		for _, e := range g.Callers[s] {
			if !seen[e.Caller] {
				seen[e.Caller] = true
				work = append(work, e.Caller)
			}
		}
	}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.Callers[cur] {
			if !seen[e.Caller] {
				seen[e.Caller] = true
				work = append(work, e.Caller)
			}
		}
	}
	return seen
}

// SCC is one strongly connected component of the call graph. Members are
// sorted; Recursive is true for multi-function components and for
// single functions that call themselves.
type SCC struct {
	Members   []string
	Recursive bool
}

// SCCs returns the Tarjan condensation of the call graph in
// callee-before-caller order: every component appears before any
// component that calls into it, so iterating the slice front-to-back
// visits callees first — the order bottom-up summary propagation needs.
// The result is deterministic: roots are visited in sorted name order and
// edges in block order, and each component's Members are sorted.
func (g *Graph) SCCs() []SCC {
	type nodeState struct {
		index, lowlink int
		onStack        bool
		visited        bool
	}
	states := map[string]*nodeState{}
	var stack []string
	var sccs []SCC
	next := 0

	// Iterative Tarjan: the explicit frame stack keeps pathological
	// (fuzzed) call chains from overflowing the goroutine stack.
	type frame struct {
		node string
		edge int // next outgoing edge to examine
	}
	var strongconnect func(root string)
	strongconnect = func(root string) {
		frames := []frame{{node: root}}
		st := &nodeState{index: next, lowlink: next, onStack: true, visited: true}
		states[root] = st
		next++
		stack = append(stack, root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ns := states[f.node]
			if f.edge < len(g.Callees[f.node]) {
				callee := g.Callees[f.node][f.edge].Callee
				f.edge++
				cs := states[callee]
				if cs == nil || !cs.visited {
					cs = &nodeState{index: next, lowlink: next, onStack: true, visited: true}
					states[callee] = cs
					next++
					stack = append(stack, callee)
					frames = append(frames, frame{node: callee})
				} else if cs.onStack {
					if cs.index < ns.lowlink {
						ns.lowlink = cs.index
					}
				}
				continue
			}
			// All edges done: pop the frame, fold lowlink into the parent,
			// and emit the component if this node is its root.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := states[frames[len(frames)-1].node]
				if ns.lowlink < parent.lowlink {
					parent.lowlink = ns.lowlink
				}
			}
			if ns.lowlink != ns.index {
				continue
			}
			var members []string
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[top].onStack = false
				members = append(members, top)
				if top == f.node {
					break
				}
			}
			sort.Strings(members)
			sccs = append(sccs, SCC{Members: members, Recursive: isRecursive(g, members)})
		}
	}
	for _, n := range g.Names() {
		if st := states[n]; st == nil || !st.visited {
			strongconnect(n)
		}
	}
	return sccs
}

// isRecursive reports whether a component needs fixpoint iteration: more
// than one member, or a single member with a self edge.
func isRecursive(g *Graph, members []string) bool {
	if len(members) > 1 {
		return true
	}
	for _, e := range g.Callees[members[0]] {
		if e.Callee == members[0] {
			return true
		}
	}
	return false
}

// PostOrder returns functions in callee-before-caller order (cycles broken
// arbitrarily but deterministically), for bottom-up summary propagation.
func (g *Graph) PostOrder() []string {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(n string) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, e := range g.Callees[n] {
			if state[e.Callee] == 0 {
				visit(e.Callee)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range g.Names() {
		visit(n)
	}
	return order
}
