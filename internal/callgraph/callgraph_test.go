package callgraph

import (
	"testing"

	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	return Build(bodies)
}

const chainSrc = `
fn a() { b(); }
fn b() { c(); c(); }
fn c() { external(); }
struct S { v: i32 }
impl S {
    fn m(&self) { helper(self.v); }
}
fn helper(v: i32) {}
`

func TestEdges(t *testing.T) {
	g := buildGraph(t, chainSrc)
	if len(g.Callees["a"]) != 1 || g.Callees["a"][0].Callee != "b" {
		t.Errorf("a's callees: %+v", g.Callees["a"])
	}
	if len(g.Callees["b"]) != 2 {
		t.Errorf("b should call c twice: %+v", g.Callees["b"])
	}
	// external() resolves to nothing: no edge.
	if len(g.Callees["c"]) != 0 {
		t.Errorf("c's callees: %+v", g.Callees["c"])
	}
	if len(g.Callers["c"]) != 2 {
		t.Errorf("c's callers: %+v", g.Callers["c"])
	}
	if len(g.Callees["S::m"]) != 1 || g.Callees["S::m"][0].Callee != "helper" {
		t.Errorf("method edge missing: %+v", g.Callees["S::m"])
	}
}

func TestTransitiveCallees(t *testing.T) {
	g := buildGraph(t, chainSrc)
	trans := g.TransitiveCallees("a")
	if !trans["b"] || !trans["c"] {
		t.Errorf("transitive = %v", trans)
	}
	if trans["helper"] {
		t.Error("helper is not reachable from a")
	}
}

func TestPostOrderCalleesFirst(t *testing.T) {
	g := buildGraph(t, chainSrc)
	order := g.PostOrder()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["c"] > pos["b"] || pos["b"] > pos["a"] {
		t.Errorf("post order wrong: %v", order)
	}
	if len(order) != len(g.Bodies) {
		t.Errorf("post order misses functions: %d vs %d", len(order), len(g.Bodies))
	}
}

func TestRecursionTolerated(t *testing.T) {
	g := buildGraph(t, `
fn even(n: i32) -> bool { odd(n - 1) }
fn odd(n: i32) -> bool { even(n - 1) }
`)
	order := g.PostOrder()
	if len(order) != 2 {
		t.Errorf("order = %v", order)
	}
	trans := g.TransitiveCallees("even")
	if !trans["odd"] || !trans["even"] {
		t.Errorf("mutual recursion closure = %v", trans)
	}
	_ = mir.Call{}
}
