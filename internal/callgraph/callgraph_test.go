package callgraph

import (
	"testing"

	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func lowerBodies(t *testing.T, src string) map[string]*mir.Body {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	return lower.Program(prog, diags)
}

func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	return Build(lowerBodies(t, src))
}

const chainSrc = `
fn a() { b(); }
fn b() { c(); c(); }
fn c() { external(); }
struct S { v: i32 }
impl S {
    fn m(&self) { helper(self.v); }
}
fn helper(v: i32) {}
`

func TestEdges(t *testing.T) {
	g := buildGraph(t, chainSrc)
	if len(g.Callees["a"]) != 1 || g.Callees["a"][0].Callee != "b" {
		t.Errorf("a's callees: %+v", g.Callees["a"])
	}
	if len(g.Callees["b"]) != 2 {
		t.Errorf("b should call c twice: %+v", g.Callees["b"])
	}
	// external() resolves to nothing: no edge.
	if len(g.Callees["c"]) != 0 {
		t.Errorf("c's callees: %+v", g.Callees["c"])
	}
	if len(g.Callers["c"]) != 2 {
		t.Errorf("c's callers: %+v", g.Callers["c"])
	}
	if len(g.Callees["S::m"]) != 1 || g.Callees["S::m"][0].Callee != "helper" {
		t.Errorf("method edge missing: %+v", g.Callees["S::m"])
	}
}

func TestTransitiveCallees(t *testing.T) {
	g := buildGraph(t, chainSrc)
	trans := g.TransitiveCallees("a")
	if !trans["b"] || !trans["c"] {
		t.Errorf("transitive = %v", trans)
	}
	if trans["helper"] {
		t.Error("helper is not reachable from a")
	}
}

func TestPostOrderCalleesFirst(t *testing.T) {
	g := buildGraph(t, chainSrc)
	order := g.PostOrder()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["c"] > pos["b"] || pos["b"] > pos["a"] {
		t.Errorf("post order wrong: %v", order)
	}
	if len(order) != len(g.Bodies) {
		t.Errorf("post order misses functions: %d vs %d", len(order), len(g.Bodies))
	}
}

func TestRecursionTolerated(t *testing.T) {
	g := buildGraph(t, `
fn even(n: i32) -> bool { odd(n - 1) }
fn odd(n: i32) -> bool { even(n - 1) }
`)
	order := g.PostOrder()
	if len(order) != 2 {
		t.Errorf("order = %v", order)
	}
	trans := g.TransitiveCallees("even")
	if !trans["odd"] || !trans["even"] {
		t.Errorf("mutual recursion closure = %v", trans)
	}
	_ = mir.Call{}
}

func TestSCCsCondensationOrder(t *testing.T) {
	g := buildGraph(t, chainSrc)
	sccs := g.SCCs()
	if len(sccs) != len(g.Bodies) {
		t.Fatalf("acyclic graph should condense to singletons: %d vs %d", len(sccs), len(g.Bodies))
	}
	pos := map[string]int{}
	for i, s := range sccs {
		if s.Recursive {
			t.Errorf("acyclic component marked recursive: %v", s.Members)
		}
		for _, m := range s.Members {
			pos[m] = i
		}
	}
	// Callees must appear before their callers.
	for caller, edges := range g.Callees {
		for _, e := range edges {
			if pos[e.Callee] > pos[caller] {
				t.Errorf("callee %s condensed after caller %s", e.Callee, caller)
			}
		}
	}
}

func TestSCCsMutualRecursion(t *testing.T) {
	g := buildGraph(t, `
fn even(n: i32) -> bool { odd(n - 1) }
fn odd(n: i32) -> bool { even(n - 1) }
fn probe() { even(4); }
fn leaf() {}
`)
	sccs := g.SCCs()
	var cycle *SCC
	for i := range sccs {
		if len(sccs[i].Members) == 2 {
			cycle = &sccs[i]
		}
	}
	if cycle == nil {
		t.Fatalf("no 2-function component: %+v", sccs)
	}
	if !cycle.Recursive {
		t.Error("cycle not marked recursive")
	}
	if cycle.Members[0] != "even" || cycle.Members[1] != "odd" {
		t.Errorf("members not sorted: %v", cycle.Members)
	}
	// probe calls into the cycle, so its singleton must come later.
	pos := map[string]int{}
	for i, s := range sccs {
		for _, m := range s.Members {
			pos[m] = i
		}
	}
	if pos["probe"] < pos["even"] {
		t.Error("caller condensed before the cycle it calls into")
	}
}

func TestSCCsSelfRecursion(t *testing.T) {
	g := buildGraph(t, `
fn fact(n: i32) -> i32 { if n > 1 { return n * fact(n - 1); } 1 }
fn plain() {}
`)
	for _, s := range g.SCCs() {
		switch s.Members[0] {
		case "fact":
			if !s.Recursive {
				t.Error("self-recursive function not marked recursive")
			}
		case "plain":
			if s.Recursive {
				t.Error("plain function marked recursive")
			}
		}
	}
}

// TestSCCsDeterministic: repeated condensations of the same program (and
// of a fresh graph over the same source) are identical — the property the
// summary framework's reproducible iteration order rests on.
func TestSCCsDeterministic(t *testing.T) {
	src := `
struct R { m: Mutex<i32> }
impl R {
    fn a(&self, n: i32) { self.b(n); }
    fn b(&self, n: i32) { self.c(n); self.a(n); }
    fn c(&self, n: i32) { self.b(n); }
    fn d(&self) { self.a(1); }
}
fn free() {}
`
	ref := buildGraph(t, src).SCCs()
	for trial := 0; trial < 20; trial++ {
		got := buildGraph(t, src).SCCs()
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d components vs %d", trial, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Recursive != ref[i].Recursive || len(got[i].Members) != len(ref[i].Members) {
				t.Fatalf("trial %d: component %d differs: %+v vs %+v", trial, i, got[i], ref[i])
			}
			for j := range ref[i].Members {
				if got[i].Members[j] != ref[i].Members[j] {
					t.Fatalf("trial %d: member order differs: %v vs %v", trial, got[i].Members, ref[i].Members)
				}
			}
		}
	}
}

func TestTransitiveCallers(t *testing.T) {
	g := buildGraph(t, chainSrc)
	callers := g.TransitiveCallers("c")
	if !callers["a"] || !callers["b"] {
		t.Errorf("c's transitive callers = %v, want a and b", callers)
	}
	if callers["c"] || callers["helper"] || callers["S::m"] {
		t.Errorf("unrelated functions marked as callers: %v", callers)
	}
	// Multi-start union: helper's callers join in.
	both := g.TransitiveCallers("c", "helper")
	if !both["S::m"] || !both["a"] || !both["b"] {
		t.Errorf("multi-start callers = %v", both)
	}
}

// --- incremental patching ------------------------------------------------

func TestPatchNilPrevIsBuild(t *testing.T) {
	bodies := lowerBodies(t, chainSrc)
	if Patch(nil, bodies, nil).Fingerprint() != Build(bodies).Fingerprint() {
		t.Fatal("Patch(nil, ...) must degrade to Build")
	}
}

// TestPatchBodyEditMatchesRebuild splices one re-lowered body into an
// otherwise pointer-identical map — exactly what the session does — and
// demands the patched graph fingerprint-match a from-scratch rebuild,
// with unchanged callers' edge slices reused rather than rescanned.
func TestPatchBodyEditMatchesRebuild(t *testing.T) {
	const v1 = `
fn a() { b(); }
fn b() { c(); }
fn c() {}
fn d() { c(); }
`
	const v2 = `
fn a() { b(); }
fn b() { c(); d(); }
fn c() {}
fn d() { c(); }
`
	prevBodies := lowerBodies(t, v1)
	prev := Build(prevBodies)

	bodies := map[string]*mir.Body{}
	for name, body := range prevBodies {
		bodies[name] = body
	}
	bodies["b"] = lowerBodies(t, v2)["b"]

	g := Patch(prev, bodies, map[string]bool{"b": true})
	if g.Fingerprint() != Build(bodies).Fingerprint() {
		t.Fatal("patched graph diverged from rebuild after a body edit")
	}
	if len(g.Callees["b"]) != 2 {
		t.Errorf("b's rescanned callees: %+v", g.Callees["b"])
	}
	// The unchanged caller's edges are the cached slice, not a rescan.
	if len(g.Callees["a"]) != 1 || &g.Callees["a"][0] != &prev.Callees["a"][0] {
		t.Error("unchanged caller a was rescanned instead of reusing cached edges")
	}
}

// TestPatchUnresolvedNowResolves: a caller whose callee did not exist at
// its last scan must be rescanned when the name gains a body, even
// though the caller itself is unchanged.
func TestPatchUnresolvedNowResolves(t *testing.T) {
	prevBodies := lowerBodies(t, `
fn caller() { missing(); }
fn other() { caller(); }
`)
	prev := Build(prevBodies)
	if len(prev.Callees["caller"]) != 0 {
		t.Fatalf("missing() should not resolve yet: %+v", prev.Callees["caller"])
	}

	bodies := map[string]*mir.Body{}
	for name, body := range prevBodies {
		bodies[name] = body
	}
	bodies["missing"] = lowerBodies(t, `fn missing() {}`)["missing"]

	g := Patch(prev, bodies, map[string]bool{"missing": true})
	if g.Fingerprint() != Build(bodies).Fingerprint() {
		t.Fatal("patched graph diverged from rebuild after resolution flip")
	}
	if len(g.Callees["caller"]) != 1 || g.Callees["caller"][0].Callee != "missing" {
		t.Errorf("caller's edge to the new body missing: %+v", g.Callees["caller"])
	}
}

// TestPatchVanishedCalleeRoundTrip: removing a callee drops the cached
// edge copy-on-write and re-records the name as unresolved, so a later
// re-add rescans the caller and restores the edge.
func TestPatchVanishedCalleeRoundTrip(t *testing.T) {
	prevBodies := lowerBodies(t, `
fn a() { b(); c(); }
fn b() {}
fn c() {}
`)
	prev := Build(prevBodies)

	// Round 1: b vanishes; a is untouched.
	smaller := map[string]*mir.Body{}
	for name, body := range prevBodies {
		if name != "b" {
			smaller[name] = body
		}
	}
	g1 := Patch(prev, smaller, nil)
	if g1.Fingerprint() != Build(smaller).Fingerprint() {
		t.Fatal("patched graph diverged from rebuild after callee removal")
	}
	if len(g1.Callees["a"]) != 1 || g1.Callees["a"][0].Callee != "c" {
		t.Errorf("a's edges after removal: %+v", g1.Callees["a"])
	}

	// Round 2: b comes back; a must be rescanned via Unresolved.
	restored := map[string]*mir.Body{}
	for name, body := range smaller {
		restored[name] = body
	}
	restored["b"] = lowerBodies(t, `fn b() {}`)["b"]
	g2 := Patch(g1, restored, map[string]bool{"b": true})
	if g2.Fingerprint() != Build(restored).Fingerprint() {
		t.Fatal("patched graph diverged from rebuild after callee re-add")
	}
	if len(g2.Callees["a"]) != 2 {
		t.Errorf("a's edges after re-add: %+v", g2.Callees["a"])
	}
}
