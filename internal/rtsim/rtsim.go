// Package rtsim models the runtime-cost experiments of §4.1: the paper
// measures that unsafe (unchecked) slice access is 4-5x faster than safe
// access with bounds checking, that pointer-arithmetic traversal is
// likewise 4-5x faster, and that ptr::copy_nonoverlapping beats
// slice::copy_from_slice by ~23% in some cases. This package provides Go
// models of the checked and unchecked operations with the same structural
// difference (a bounds test plus a potential panic vs a raw access); the
// root bench_test.go regenerates the comparison.
package rtsim

import (
	"fmt"
	"unsafe"
)

// Slice is a bounds-checked buffer modeling a Rust slice: Get panics on
// out-of-range indices exactly as Rust's Index does.
type Slice struct {
	data []byte
}

// NewSlice builds a slice of n deterministic bytes.
func NewSlice(n int) *Slice {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i * 31)
	}
	return &Slice{data: d}
}

// Len returns the slice length.
func (s *Slice) Len() int { return len(s.data) }

// Get is the checked access: `slice[i]` in Rust, with an explicit bounds
// test and panic path that the optimizer cannot elide (mirroring the cost
// the paper measures).
func (s *Slice) Get(i int) byte {
	if i < 0 || i >= len(s.data) {
		panic(fmt.Sprintf("index out of bounds: the len is %d but the index is %d", len(s.data), i))
	}
	return s.data[i]
}

// GetUnchecked is `slice::get_unchecked`: no bounds test, implemented with
// a raw pointer access like its Rust counterpart. The caller is
// responsible for i being in range (the unsafe contract).
func (s *Slice) GetUnchecked(i int) byte {
	return *(*byte)(unsafe.Add(unsafe.Pointer(&s.data[0]), i))
}

// SumChecked adds all elements through checked access.
func (s *Slice) SumChecked() uint64 {
	var sum uint64
	for i := 0; i < len(s.data); i++ {
		sum += uint64(s.Get(i))
	}
	return sum
}

// SumUnchecked adds all elements through unchecked pointer access with the
// base hoisted, as rustc emits for get_unchecked in a loop.
func (s *Slice) SumUnchecked() uint64 {
	var sum uint64
	base := unsafe.Pointer(&s.data[0])
	for i := 0; i < len(s.data); i++ {
		sum += uint64(*(*byte)(unsafe.Add(base, i)))
	}
	return sum
}

// SumPointer models pointer-arithmetic traversal (ptr::offset + deref):
// a single bounds decision hoisted out of the loop.
func (s *Slice) SumPointer() uint64 {
	var sum uint64
	d := s.data
	for len(d) >= 8 {
		sum += uint64(d[0]) + uint64(d[1]) + uint64(d[2]) + uint64(d[3]) +
			uint64(d[4]) + uint64(d[5]) + uint64(d[6]) + uint64(d[7])
		d = d[8:]
	}
	for _, b := range d {
		sum += uint64(b)
	}
	return sum
}

// CopyFromSlice models slice::copy_from_slice: it verifies the lengths
// match (panicking otherwise), then performs an overlap-safe memmove.
// The length-check branch and the overlap-tolerant (rather than
// straight-line) copy are the overheads behind the paper's ~23%
// measurement, which shows on small copies and washes out on large ones.
func CopyFromSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("source slice length (%d) does not match destination slice length (%d)", len(src), len(dst)))
	}
	// Overlap-safe: copy through a forward/backward decision like memmove.
	if len(src) == 0 {
		return
	}
	if &dst[0] == &src[0] {
		return
	}
	copy(dst, src)
}

// CopyNonoverlapping models ptr::copy_nonoverlapping: the caller asserts
// disjointness and matching lengths, so the copy is a single unconditional
// bulk move with no checks.
func CopyNonoverlapping(dst, src []byte) {
	copy(dst, src)
}

// CopySweepSizes are the copy sizes the §4.1 bench sweeps: the unsafe win
// concentrates at small sizes where the checks dominate.
var CopySweepSizes = []int{8, 32, 128, 1024, 16 * 1024}
