package rtsim

import (
	"testing"
	"testing/quick"
)

func TestCheckedAndUncheckedAgree(t *testing.T) {
	s := NewSlice(257)
	for i := 0; i < s.Len(); i++ {
		if s.Get(i) != s.GetUnchecked(i) {
			t.Fatalf("mismatch at %d: %d vs %d", i, s.Get(i), s.GetUnchecked(i))
		}
	}
}

func TestSumsAgree(t *testing.T) {
	prop := func(n uint16) bool {
		s := NewSlice(int(n%4096) + 1)
		a, b, c := s.SumChecked(), s.SumUnchecked(), s.SumPointer()
		return a == b && b == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckedPanicsOutOfBounds(t *testing.T) {
	s := NewSlice(8)
	for _, idx := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", idx)
				}
			}()
			s.Get(idx)
		}()
	}
}

func TestCopiesAgree(t *testing.T) {
	prop := func(data []byte) bool {
		src := append([]byte(nil), data...)
		d1 := make([]byte, len(src))
		d2 := make([]byte, len(src))
		CopyFromSlice(d1, src)
		CopyNonoverlapping(d2, src)
		for i := range src {
			if d1[i] != src[i] || d2[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	CopyFromSlice(make([]byte, 3), make([]byte, 4))
}
