package study

// This file records the paper's published numbers verbatim. Everything the
// report package prints is re-derived from the expanded bug database in
// bugs.go; the literals here are the generation spec and the test oracle.

// ProjectMeta is one Table 1 row.
type ProjectMeta struct {
	Project   Project
	StartTime string // YYYY/MM
	Stars     int
	Commits   int
	KLOC      int
	Mem       int // memory-safety bugs
	Blk       int // blocking bugs
	NBlk      int // non-blocking bugs
}

// Table1 is the studied-software table. The libraries row aggregates the
// five studied libraries; per the caption, Stars/Commits/KLOC are maxima
// among them.
var Table1 = []ProjectMeta{
	{Servo, "2012/02", 14574, 38096, 271, 14, 13, 18},
	{Tock, "2015/05", 1343, 4621, 60, 5, 0, 2},
	{Ethereum, "2015/11", 5565, 12121, 145, 2, 34, 4},
	{TiKV, "2016/01", 5717, 3897, 149, 1, 4, 3},
	{Redox, "2016/08", 11450, 2129, 199, 20, 2, 3},
	{Libraries, "2010/07", 3106, 2402, 25, 7, 6, 10},
}

// AdvisoryMemBugs and AdvisoryNBlkBugs are the 22 CVE/RustSec bugs, which
// Table 1's caption counts separately (21 memory + 1 non-blocking closes
// the 70/100 totals).
const (
	AdvisoryMemBugs  = 21
	AdvisoryNBlkBugs = 1
)

// Table2Cell is one (propagation, effect) count with its interior-unsafe
// sub-count (the parenthesized numbers).
type Table2Cell struct {
	Prop     MemProp
	Effect   MemEffect
	Count    int
	Interior int
}

// Table2 is the memory-bug category table, exactly as published.
var Table2 = []Table2Cell{
	{PropSafe, EffectUAF, 1, 0},

	{PropUnsafe, EffectBuffer, 4, 1},
	{PropUnsafe, EffectNull, 12, 4},
	{PropUnsafe, EffectInvalidFree, 5, 3},
	{PropUnsafe, EffectUAF, 2, 2},

	{PropSafeToUnsafe, EffectBuffer, 17, 10},
	{PropSafeToUnsafe, EffectInvalidFree, 1, 0},
	{PropSafeToUnsafe, EffectUAF, 11, 4},
	{PropSafeToUnsafe, EffectDoubleFree, 2, 2},

	{PropUnsafeToSafe, EffectUninit, 7, 0},
	{PropUnsafeToSafe, EffectInvalidFree, 4, 0},
	{PropUnsafeToSafe, EffectDoubleFree, 4, 0},
}

// MemFixCounts is §5.2's fix-strategy distribution over the 70 memory bugs.
var MemFixCounts = map[MemFix]int{
	FixCondSkip: 30,
	FixLifetime: 22,
	FixOperands: 9,
	FixOtherMem: 9,
}

// Table3 is the blocking-bug table: rows are projects, columns sync
// primitives. Totals: Mutex&RwLock 38, Condvar 10, Channel 6, Once 1,
// Other 4 = 59.
var Table3 = map[Project]map[SyncPrimitive]int{
	Servo:     {PrimMutex: 6, PrimCondvar: 0, PrimChannel: 5, PrimOnce: 0, PrimOther: 2},
	Tock:      {},
	Ethereum:  {PrimMutex: 27, PrimCondvar: 6, PrimChannel: 0, PrimOnce: 0, PrimOther: 1},
	TiKV:      {PrimMutex: 3, PrimCondvar: 1, PrimChannel: 0, PrimOnce: 0, PrimOther: 0},
	Redox:     {PrimMutex: 2, PrimCondvar: 0, PrimChannel: 0, PrimOnce: 0, PrimOther: 0},
	Libraries: {PrimMutex: 0, PrimCondvar: 3, PrimChannel: 1, PrimOnce: 1, PrimOther: 1},
}

// MutexCauseCounts splits the 38 Mutex&RwLock blocking bugs by cause
// (§6.1 text: 30 double lock, 7 conflicting orders, 1 forgot unlock).
var MutexCauseCounts = map[BlockingCause]int{
	CauseDoubleLock:       30,
	CauseConflictingOrder: 7,
	CauseForgotUnlock:     1,
}

// CondvarCauseCounts splits the 10 Condvar bugs (8 missing notify, 2
// mutual wait).
var CondvarCauseCounts = map[BlockingCause]int{
	CauseMissingNotify: 8,
	CauseWaitWhileLock: 2,
}

// ChannelCauseCounts splits the 6 channel bugs (1 no sender, 3 all-wait,
// 1 recv-while-lock, 1 bounded-full).
var ChannelCauseCounts = map[BlockingCause]int{
	CauseChanNoSender:  1,
	CauseChanAllWait:   3,
	CauseChanWhileLock: 1,
	CauseChanFull:      1,
}

// BlkFixCounts: 51/59 fixed by adjusting synchronization, of which 21 by
// adjusting the guard's lifetime; 8 by other strategies.
var BlkFixCounts = map[BlkFix]int{
	BlkFixAdjustSync:    30, // 51 total sync adjustments minus the 21 below
	BlkFixGuardLifetime: 21,
	BlkFixOtherStrategy: 8,
}

// ExplicitDropUsages is §6.1's count of mem::drop(guard) usages found in
// the studied applications (9 to avoid double lock, 1 to avoid conflicting
// orders, 1 other).
const ExplicitDropUsages = 11

// Table4 is the non-blocking data-sharing table (38 shared-memory bugs;
// the MSG column holds the 3 message-passing bugs).
var Table4 = map[Project]map[ShareMode]int{
	Servo:     {ShareGlobal: 1, SharePointer: 7, ShareSync: 1, ShareOSHw: 0, ShareAtomic: 0, ShareMutex: 7, ShareMessage: 2},
	Tock:      {ShareOSHw: 2},
	Ethereum:  {ShareAtomic: 1, ShareMutex: 2, ShareMessage: 1},
	TiKV:      {ShareOSHw: 1, ShareAtomic: 1, ShareMutex: 1},
	Redox:     {ShareGlobal: 1, ShareOSHw: 2},
	Libraries: {ShareGlobal: 1, SharePointer: 5, ShareSync: 2, ShareAtomic: 3},
}

// Non-blocking aggregate facts (§6.2 text).
const (
	NBlkUnsynchronized = 17 // no synchronization at all (all unsafe sharing)
	NBlkWrongSync      = 21 // synchronized, but wrongly
	NBlkInSafeCode     = 25 // manifest in safe code
	NBlkInteriorMut    = 13 // caused by improper interior mutability
	NBlkLibMisuse      = 7  // misuse of Rust-unique libraries
)

// NBlkFixCounts is §6.2's fix distribution (sums to 38; the 3
// message-passing bugs are included in these strategies).
var NBlkFixCounts = map[NBlkFix]int{
	NBlkFixAtomicity:  20,
	NBlkFixOrdering:   10,
	NBlkFixAvoidShare: 5,
	NBlkFixLocalCopy:  1,
	NBlkFixAppLogic:   2,
}

// Unsafe-usage statistics (§4).
type UnsafeCounts struct {
	Regions int
	Fns     int
	Traits  int
}

// Total reports the combined count.
func (u UnsafeCounts) Total() int { return u.Regions + u.Fns + u.Traits }

// AppUnsafe and StdUnsafe are the §4 headline counts.
var (
	AppUnsafe = UnsafeCounts{Regions: 3665, Fns: 1302, Traits: 23}
	StdUnsafe = UnsafeCounts{Regions: 1581, Fns: 861, Traits: 12}
)

// UnsafeSample describes the 600 sampled app usages (400 interior-unsafe
// regions + 200 unsafe functions) plus 250 std interior-unsafe samples.
const (
	SampledAppUsages    = 600
	SampledAppInterior  = 400
	SampledAppUnsafeFns = 200
	SampledStdInterior  = 250
)

// Operation-kind percentages over the sampled usages (§4.1).
var UnsafeOpPercent = map[string]int{
	"memory operations":  66,
	"calling unsafe fns": 29,
	"other":              5,
}

// Purpose percentages over the sampled usages (§4.1).
var UnsafePurposePercent = map[string]int{
	"code reuse":         42,
	"performance":        22,
	"cross-thread share": 14,
	"other check bypass": 22,
}

// No-compile-error removals: 32 sampled usages (5%) compile without
// `unsafe`; 21 kept for consistency, 11 as warnings, of which 5 label
// struct constructors (50 such constructors in std).
const (
	RemovableUnsafe         = 32
	RemovableForConsistency = 21
	RemovableAsWarning      = 11
	WarningCtorsInApps      = 5
	WarningCtorsInStd       = 50
)

// Unsafe removal study (§4.2): 130 removals from 108 commits.
const (
	RemovalCommits = 108
	RemovalCases   = 130
)

// RemovalPurposePercent breaks down why unsafe was removed.
var RemovalPurposePercent = map[string]int{
	"improve memory safety": 61,
	"better code structure": 24,
	"improve thread safety": 10,
	"bug fixing":            3,
	"unnecessary usage":     2,
}

// Removal destinations: 43 became fully safe; the rest became interior
// unsafe via std (48), self-implemented (29), or third-party (10).
var RemovalDestinations = map[string]int{
	"fully safe":                43,
	"std interior unsafe":       48,
	"own interior unsafe":       29,
	"3rd-party interior unsafe": 10,
}

// Interior-unsafe encapsulation audit (§4.3).
const (
	StdInteriorNoExplicitCheckPct = 58 // % of 250 std fns with no explicit check
	StdInteriorMemConditionPct    = 69 // % requiring valid memory/UTF-8
	StdInteriorLifetimeCondPct    = 15 // % requiring lifetime/ownership conditions
	BadEncapsulations             = 19 // improperly encapsulated interior unsafe
	BadEncapsStd                  = 5
	BadEncapsApps                 = 14
	BadEncapsNoRetCheck           = 4 // unchecked external-call return values
	BadEncapsParamDeref           = 4 // unchecked parameter deref/index
)

// Detector results (§7).
const (
	UAFBugsFound        = 4 // previously unknown use-after-free bugs
	UAFFalsePositives   = 3
	// SafeDrop-style precise mode (the path-sensitive drop-and-alias
	// refuter): same 4 true positives, all 3 planted false-positive
	// patterns (fp_context, fp_flow, fp_path) refuted.
	UAFPreciseBugsFound      = 4
	UAFPreciseFalsePositives = 0
	DoubleLockBugsFound = 6
	DoubleLockFalsePos  = 0
	// §6.2 extension: seeded non-blocking data races the thread-escape +
	// lockset detector must find in the patterns corpus (one per studied
	// project), with no reports on the synchronized fixed variants.
	RaceBugsFound = 5
	RaceFalsePos  = 0
	// §6.1 extension: the non-double-lock blocking shapes (channel
	// hold-and-wait, all-ends-waiting through channel parameters,
	// orphaned recv, Condvar lost signal — including the param-rooted
	// wait variant — and Once reentrancy through closure bindings)
	// seeded in the patterns corpus, with no reports on the paired
	// fixed variants or the app-scale clean modules.
	BlockingBugsFound = 9
	BlockingFalsePos  = 0
)

// BugsFixedAfter2016 is Figure 2's headline: 145 of the 170 studied bugs
// were patched after Rust stabilized (2016).
const BugsFixedAfter2016 = 145
