package study

import (
	"sort"
	"strings"
	"time"
)

// This file reproduces the §3 bug-collection methodology: commit logs are
// filtered by safety-related keywords, the survivors are deduplicated and
// become inspection candidates. The paper did the final confirmation
// manually; here a deterministic labeller plays that role so the pipeline
// is exercisable end to end (the corpus package feeds it synthetic commit
// histories).

// MemoryKeywords are the filter terms for memory bugs (§3).
var MemoryKeywords = []string{
	"use-after-free", "use after free", "double free", "double-free",
	"buffer overflow", "out of bounds", "out-of-bounds", "uninitialized",
	"null pointer", "dangling", "invalid free", "heap corruption",
	"memory safety", "segfault", "overflow check",
}

// ConcurrencyKeywords are the filter terms for concurrency bugs (§3).
var ConcurrencyKeywords = []string{
	"deadlock", "double lock", "race", "data race", "race condition",
	"atomicity", "lock order", "livelock", "hang", "starvation",
	"concurrency bug", "synchronization", "mutex", "condvar",
}

// Commit is one commit-log entry.
type Commit struct {
	Project Project
	Hash    string
	Date    time.Time
	Message string
}

// Candidate is one commit that survived keyword filtering.
type Candidate struct {
	Commit  Commit
	Matched []string // keywords that hit
	Class   BugClass // best-guess class from the matched keywords
}

// FilterCommits runs the keyword filter over a commit history and returns
// inspection candidates, deduplicated by (project, hash), in stable order.
func FilterCommits(commits []Commit) []Candidate {
	seen := map[string]bool{}
	var out []Candidate
	for _, c := range commits {
		key := c.Project.String() + ":" + c.Hash
		if seen[key] {
			continue
		}
		msg := strings.ToLower(c.Message)
		var memHits, concHits []string
		for _, kw := range MemoryKeywords {
			if strings.Contains(msg, kw) {
				memHits = append(memHits, kw)
			}
		}
		for _, kw := range ConcurrencyKeywords {
			if strings.Contains(msg, kw) {
				concHits = append(concHits, kw)
			}
		}
		if len(memHits) == 0 && len(concHits) == 0 {
			continue
		}
		seen[key] = true
		cand := Candidate{Commit: c}
		if len(memHits) >= len(concHits) {
			cand.Class = MemoryBug
			cand.Matched = memHits
		} else {
			cand.Class = blockingOrNot(concHits)
			cand.Matched = concHits
		}
		out = append(out, cand)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Commit.Date.Equal(out[j].Commit.Date) {
			return out[i].Commit.Date.Before(out[j].Commit.Date)
		}
		return out[i].Commit.Hash < out[j].Commit.Hash
	})
	return out
}

func blockingOrNot(hits []string) BugClass {
	for _, h := range hits {
		switch h {
		case "deadlock", "double lock", "hang", "livelock", "starvation", "lock order":
			return BlockingBug
		}
	}
	return NonBlockingBug
}

// Funnel summarizes a mining run: the §3 pipeline's stage counts.
type Funnel struct {
	Total     int // commits scanned
	Filtered  int // survived keyword filter
	ByClass   map[BugClass]int
	ByProject map[Project]int
}

// Mine runs the full pipeline and reports the funnel.
func Mine(commits []Commit) ([]Candidate, Funnel) {
	cands := FilterCommits(commits)
	f := Funnel{
		Total:     len(commits),
		Filtered:  len(cands),
		ByClass:   map[BugClass]int{},
		ByProject: map[Project]int{},
	}
	for _, c := range cands {
		f.ByClass[c.Class]++
		f.ByProject[c.Commit.Project]++
	}
	return cands, f
}
