// Package study encodes the paper's empirical study as data and code: the
// 170 manually-labelled bugs (70 memory-safety, 59 blocking, 41
// non-blocking) with every dimension the paper tabulates, the §4 unsafe
// usage statistics, the Rust release history behind Figure 1, and the
// commit-mining pipeline of §3. Each table and figure in the paper is a
// deterministic aggregation over this data; the tests assert the exact
// published counts.
package study

import "time"

// Project identifies a studied code base (Table 1) or the CVE/RustSec
// advisory databases.
type Project int

// Studied projects.
const (
	Servo Project = iota
	Tock
	Ethereum
	TiKV
	Redox
	Libraries
	Advisories // CVE + RustSec entries (22 bugs, counted outside Table 1)
)

// Projects lists the Table 1 rows in paper order.
var Projects = []Project{Servo, Tock, Ethereum, TiKV, Redox, Libraries}

func (p Project) String() string {
	switch p {
	case Servo:
		return "Servo"
	case Tock:
		return "Tock"
	case Ethereum:
		return "Ethereum"
	case TiKV:
		return "TiKV"
	case Redox:
		return "Redox"
	case Libraries:
		return "libraries"
	case Advisories:
		return "CVE/RustSec"
	default:
		return "?"
	}
}

// BugClass is the top-level split of the 170 bugs.
type BugClass int

// Bug classes.
const (
	MemoryBug BugClass = iota
	BlockingBug
	NonBlockingBug
)

func (c BugClass) String() string {
	switch c {
	case MemoryBug:
		return "memory"
	case BlockingBug:
		return "blocking"
	default:
		return "non-blocking"
	}
}

// MemEffect is Table 2's effect dimension.
type MemEffect int

// Memory bug effects (Table 2 columns).
const (
	EffectBuffer MemEffect = iota // buffer overflow
	EffectNull                    // null pointer dereferencing
	EffectUninit                  // reading uninitialized memory
	EffectInvalidFree
	EffectUAF // use after free
	EffectDoubleFree
)

// MemEffects lists Table 2's columns in order.
var MemEffects = []MemEffect{EffectBuffer, EffectNull, EffectUninit, EffectInvalidFree, EffectUAF, EffectDoubleFree}

func (e MemEffect) String() string {
	switch e {
	case EffectBuffer:
		return "Buffer"
	case EffectNull:
		return "Null"
	case EffectUninit:
		return "Uninitialized"
	case EffectInvalidFree:
		return "Invalid"
	case EffectUAF:
		return "UAF"
	case EffectDoubleFree:
		return "Double free"
	default:
		return "?"
	}
}

// MemProp is Table 2's error-propagation dimension: whether the cause
// (patched code) and effect (observable symptom) sit in safe or unsafe
// code.
type MemProp int

// Propagation categories (Table 2 rows).
const (
	PropSafe         MemProp = iota // safe -> safe
	PropUnsafe                      // unsafe -> unsafe
	PropSafeToUnsafe                // safe -> unsafe
	PropUnsafeToSafe                // unsafe -> safe
)

// MemProps lists Table 2's rows in paper order.
var MemProps = []MemProp{PropSafe, PropUnsafe, PropSafeToUnsafe, PropUnsafeToSafe}

func (p MemProp) String() string {
	switch p {
	case PropSafe:
		return "safe"
	case PropUnsafe:
		return "unsafe"
	case PropSafeToUnsafe:
		return "safe -> unsafe"
	case PropUnsafeToSafe:
		return "unsafe -> safe"
	default:
		return "?"
	}
}

// MemFix is §5.2's fix-strategy dimension.
type MemFix int

// Memory bug fix strategies.
const (
	FixCondSkip MemFix = iota // conditionally skip dangerous code
	FixLifetime               // adjust object lifetime
	FixOperands               // change unsafe operands
	FixOtherMem
)

func (f MemFix) String() string {
	switch f {
	case FixCondSkip:
		return "conditionally skip code"
	case FixLifetime:
		return "adjust lifetime"
	case FixOperands:
		return "change unsafe operands"
	default:
		return "other"
	}
}

// SyncPrimitive is Table 3's blocking-operation dimension.
type SyncPrimitive int

// Blocking synchronization primitives (Table 3 columns).
const (
	PrimMutex SyncPrimitive = iota // Mutex & RwLock
	PrimCondvar
	PrimChannel
	PrimOnce
	PrimOther
)

// SyncPrimitives lists Table 3's columns in order.
var SyncPrimitives = []SyncPrimitive{PrimMutex, PrimCondvar, PrimChannel, PrimOnce, PrimOther}

func (s SyncPrimitive) String() string {
	switch s {
	case PrimMutex:
		return "Mutex&Rwlock"
	case PrimCondvar:
		return "Condvar"
	case PrimChannel:
		return "Channel"
	case PrimOnce:
		return "Once"
	default:
		return "Other"
	}
}

// BlockingCause refines the Mutex/RwLock blocking bugs (§6.1 text).
type BlockingCause int

// Blocking bug causes.
const (
	CauseDoubleLock BlockingCause = iota
	CauseConflictingOrder
	CauseForgotUnlock
	CauseMissingNotify // Condvar: no notify
	CauseWaitWhileLock // Condvar: holder waits for notify from blocked peer
	CauseChanNoSender
	CauseChanAllWait
	CauseChanWhileLock
	CauseChanFull
	CauseOnceRecursive
	CauseOtherBlocking
)

func (c BlockingCause) String() string {
	switch c {
	case CauseDoubleLock:
		return "double lock"
	case CauseConflictingOrder:
		return "conflicting lock order"
	case CauseForgotUnlock:
		return "forgot unlock"
	case CauseMissingNotify:
		return "missing notify"
	case CauseWaitWhileLock:
		return "wait while holding lock"
	case CauseChanNoSender:
		return "no sender"
	case CauseChanAllWait:
		return "all ends waiting"
	case CauseChanWhileLock:
		return "recv while holding lock"
	case CauseChanFull:
		return "bounded channel full"
	case CauseOnceRecursive:
		return "recursive call_once"
	default:
		return "other"
	}
}

// BlkFix is §6.1's blocking fix strategies.
type BlkFix int

// Blocking bug fix strategies.
const (
	BlkFixAdjustSync    BlkFix = iota // add/remove/move sync operations
	BlkFixGuardLifetime               // adjust guard lifetime (Rust-unique)
	BlkFixOtherStrategy               // e.g. non-blocking syscall
)

func (f BlkFix) String() string {
	switch f {
	case BlkFixAdjustSync:
		return "adjust synchronization"
	case BlkFixGuardLifetime:
		return "adjust guard lifetime"
	default:
		return "other"
	}
}

// ShareMode is Table 4's data-sharing dimension for non-blocking bugs.
type ShareMode int

// Data sharing modes (Table 4 columns).
const (
	ShareGlobal  ShareMode = iota // global static mutable variable (unsafe)
	SharePointer                  // raw pointer passed across threads (unsafe)
	ShareSync                     // unsafe impl Sync
	ShareOSHw                     // OS or hardware resources
	ShareAtomic                   // atomic variables (safe)
	ShareMutex                    // Mutex/RwLock-wrapped data (safe)
	ShareMessage                  // message passing (the 3 MSG bugs)
)

// ShareModes lists Table 4's columns in order (message passing last).
var ShareModes = []ShareMode{ShareGlobal, SharePointer, ShareSync, ShareOSHw, ShareAtomic, ShareMutex, ShareMessage}

func (s ShareMode) String() string {
	switch s {
	case ShareGlobal:
		return "Global"
	case SharePointer:
		return "Pointer"
	case ShareSync:
		return "Sync"
	case ShareOSHw:
		return "O. H."
	case ShareAtomic:
		return "Atomic"
	case ShareMutex:
		return "Mutex"
	default:
		return "MSG"
	}
}

// IsUnsafeShare reports whether the sharing mode requires unsafe or
// interior-unsafe code (Table 4's left half).
func (s ShareMode) IsUnsafeShare() bool {
	switch s {
	case ShareGlobal, SharePointer, ShareSync, ShareOSHw:
		return true
	}
	return false
}

// NBlkFix is §6.2's non-blocking fix strategies.
type NBlkFix int

// Non-blocking fix strategies.
const (
	NBlkFixAtomicity NBlkFix = iota // enforce atomic accesses
	NBlkFixOrdering                 // enforce access ordering
	NBlkFixAvoidShare
	NBlkFixLocalCopy
	NBlkFixAppLogic
)

func (f NBlkFix) String() string {
	switch f {
	case NBlkFixAtomicity:
		return "enforce atomicity"
	case NBlkFixOrdering:
		return "enforce ordering"
	case NBlkFixAvoidShare:
		return "avoid shared access"
	case NBlkFixLocalCopy:
		return "make local copy"
	default:
		return "change app logic"
	}
}

// Bug is one studied bug with every labelled dimension. Fields outside a
// bug's class are zero.
type Bug struct {
	ID      string
	Project Project
	Class   BugClass
	FixedAt time.Time

	// Memory-safety dimensions (Table 2, §5.2).
	MemEffect        MemEffect
	MemProp          MemProp
	EffectInInterior bool // effect inside an interior-unsafe function
	MemFix           MemFix

	// Blocking dimensions (Table 3, §6.1).
	Primitive SyncPrimitive
	BlkCause  BlockingCause
	BlkFix    BlkFix

	// Non-blocking dimensions (Table 4, §6.2).
	Share        ShareMode
	InSafeCode   bool // manifests entirely in safe code
	Synchronized bool // accesses had (wrong) synchronization
	InteriorMut  bool // involves interior mutability
	LibMisuse    bool // misuse of a Rust-unique library (RefCell etc.)
	NBlkFix      NBlkFix
}
