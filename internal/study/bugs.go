package study

import (
	"fmt"
	"sort"
	"time"
)

// Database is the expanded bug database.
type Database struct {
	Bugs []Bug
}

// Build expands the spec tables into the 170 individual bug records. The
// expansion is deterministic: running it twice yields identical databases.
// Joint distributions the paper does not publish (e.g. which project each
// Table 2 cell's bugs came from) are filled greedily against the published
// marginals, so every published aggregate is reproduced exactly.
func Build() *Database {
	db := &Database{}
	db.buildMemoryBugs()
	db.buildBlockingBugs()
	db.buildNonBlockingBugs()
	db.assignDates()
	return db
}

// quota hands out values from a fixed multiset in order.
type quota[T comparable] struct {
	order  []T
	counts map[T]int
}

func newQuota[T comparable](order []T, counts map[T]int) *quota[T] {
	c := make(map[T]int, len(counts))
	for k, v := range counts {
		c[k] = v
	}
	return &quota[T]{order: order, counts: c}
}

// take returns the first preferred value still in stock, falling back to
// the order list.
func (q *quota[T]) take(prefs ...T) T {
	for _, p := range prefs {
		if q.counts[p] > 0 {
			q.counts[p]--
			return p
		}
	}
	for _, p := range q.order {
		if q.counts[p] > 0 {
			q.counts[p]--
			return p
		}
	}
	var zero T
	return zero
}

func (db *Database) buildMemoryBugs() {
	// Per-project memory quotas: Table 1 columns plus the 21 advisory bugs.
	projCounts := map[Project]int{Advisories: AdvisoryMemBugs}
	projOrder := []Project{Servo, Tock, Ethereum, TiKV, Redox, Libraries, Advisories}
	for _, row := range Table1 {
		projCounts[row.Project] = row.Mem
	}
	projQ := newQuota(projOrder, projCounts)

	fixQ := newQuota(
		[]MemFix{FixCondSkip, FixLifetime, FixOperands, FixOtherMem},
		MemFixCounts,
	)

	n := 0
	for _, cell := range Table2 {
		for i := 0; i < cell.Count; i++ {
			b := Bug{
				ID:               fmt.Sprintf("MEM-%03d", n),
				Class:            MemoryBug,
				MemEffect:        cell.Effect,
				MemProp:          cell.Prop,
				EffectInInterior: i < cell.Interior,
				Project:          projQ.take(),
			}
			// Fix strategies follow the paper's per-effect narrative:
			// lifetime fixes for UAF/double-free/invalid-free, conditional
			// skips for bounds/null, operand changes for uninit reads.
			switch cell.Effect {
			case EffectUAF, EffectDoubleFree:
				b.MemFix = fixQ.take(FixLifetime, FixCondSkip)
			case EffectInvalidFree:
				b.MemFix = fixQ.take(FixLifetime, FixOtherMem)
			case EffectBuffer:
				b.MemFix = fixQ.take(FixCondSkip, FixOperands)
			case EffectNull:
				b.MemFix = fixQ.take(FixCondSkip, FixOperands)
			case EffectUninit:
				b.MemFix = fixQ.take(FixOperands, FixOtherMem)
			}
			db.Bugs = append(db.Bugs, b)
			n++
		}
	}
}

func (db *Database) buildBlockingBugs() {
	mutexCauseQ := newQuota(
		[]BlockingCause{CauseDoubleLock, CauseConflictingOrder, CauseForgotUnlock},
		MutexCauseCounts,
	)
	condvarCauseQ := newQuota(
		[]BlockingCause{CauseMissingNotify, CauseWaitWhileLock},
		CondvarCauseCounts,
	)
	chanCauseQ := newQuota(
		[]BlockingCause{CauseChanNoSender, CauseChanAllWait, CauseChanWhileLock, CauseChanFull},
		ChannelCauseCounts,
	)
	fixQ := newQuota(
		[]BlkFix{BlkFixAdjustSync, BlkFixGuardLifetime, BlkFixOtherStrategy},
		BlkFixCounts,
	)

	n := 0
	for _, proj := range Projects {
		for _, prim := range SyncPrimitives {
			for i := 0; i < Table3[proj][prim]; i++ {
				b := Bug{
					ID:        fmt.Sprintf("BLK-%03d", n),
					Class:     BlockingBug,
					Project:   proj,
					Primitive: prim,
				}
				switch prim {
				case PrimMutex:
					b.BlkCause = mutexCauseQ.take()
				case PrimCondvar:
					b.BlkCause = condvarCauseQ.take()
				case PrimChannel:
					b.BlkCause = chanCauseQ.take()
				case PrimOnce:
					b.BlkCause = CauseOnceRecursive
				default:
					b.BlkCause = CauseOtherBlocking
				}
				// Guard-lifetime fixes only make sense for lock bugs;
				// "other" fixes go to the non-primitive bugs first.
				switch {
				case b.BlkCause == CauseDoubleLock:
					b.BlkFix = fixQ.take(BlkFixGuardLifetime, BlkFixAdjustSync)
				case b.BlkCause == CauseOtherBlocking:
					b.BlkFix = fixQ.take(BlkFixOtherStrategy, BlkFixAdjustSync)
				default:
					b.BlkFix = fixQ.take(BlkFixAdjustSync, BlkFixOtherStrategy)
				}
				db.Bugs = append(db.Bugs, b)
				n++
			}
		}
	}
}

func (db *Database) buildNonBlockingBugs() {
	fixQ := newQuota(
		[]NBlkFix{NBlkFixAtomicity, NBlkFixOrdering, NBlkFixAvoidShare, NBlkFixLocalCopy, NBlkFixAppLogic},
		NBlkFixCounts,
	)
	// Flags from the §6.2 aggregates; handed out deterministically.
	unsyncLeft := NBlkUnsynchronized
	safeCodeLeft := NBlkInSafeCode
	interiorLeft := NBlkInteriorMut
	libMisuseLeft := NBlkLibMisuse - 2 // two of the seven are MSG bugs

	var bugs []Bug
	n := 0
	for _, proj := range Projects {
		for _, mode := range ShareModes {
			for i := 0; i < Table4[proj][mode]; i++ {
				b := Bug{
					ID:      fmt.Sprintf("NBL-%03d", n),
					Class:   NonBlockingBug,
					Project: proj,
					Share:   mode,
				}
				if mode == ShareMessage {
					// Message-passing bugs: ordering-style fixes, outside
					// the §6.2 shared-memory fix table.
					b.NBlkFix = NBlkFixAppLogic
					b.InSafeCode = true
					safeCodeLeft--
				} else {
					b.NBlkFix = fixQ.take()
					// Unsynchronized accesses all come from unsafe sharing.
					if mode.IsUnsafeShare() && unsyncLeft > 0 {
						unsyncLeft--
					} else {
						b.Synchronized = true
					}
					// Safe-mode sharing manifests in safe code; some unsafe
					// sharing does too (total 25).
					if !mode.IsUnsafeShare() {
						b.InSafeCode = true
						safeCodeLeft--
					}
					if mode == ShareAtomic || mode == ShareMutex || mode == ShareSync {
						if interiorLeft > 0 {
							b.InteriorMut = true
							interiorLeft--
						}
					}
					if libMisuseLeft > 0 && (mode == ShareSync || mode == SharePointer) {
						b.LibMisuse = true
						libMisuseLeft--
					}
				}
				bugs = append(bugs, b)
				n++
			}
		}
	}
	// The two message-passing library misuses.
	msgMisuse := 2
	for i := range bugs {
		if bugs[i].Share == ShareMessage && msgMisuse > 0 {
			bugs[i].LibMisuse = true
			msgMisuse--
		}
	}
	// Spread the remaining "in safe code" flags over synchronized
	// unsafe-sharing bugs.
	for i := range bugs {
		if safeCodeLeft == 0 {
			break
		}
		if !bugs[i].InSafeCode && bugs[i].Share != ShareMessage && bugs[i].Synchronized {
			bugs[i].InSafeCode = true
			safeCodeLeft--
		}
	}
	for i := range bugs {
		if safeCodeLeft == 0 {
			break
		}
		if !bugs[i].InSafeCode && bugs[i].Share != ShareMessage {
			bugs[i].InSafeCode = true
			safeCodeLeft--
		}
	}
	// Remaining interior-mutability flags.
	for i := range bugs {
		if interiorLeft == 0 {
			break
		}
		if !bugs[i].InteriorMut && bugs[i].Share != ShareMessage {
			bugs[i].InteriorMut = true
			interiorLeft--
		}
	}
	// Table 4's libraries row absorbs the one advisory non-blocking bug
	// (the row sums to 11 while Table 1 reports 10): relabel the last
	// libraries Pointer bug.
	for i := len(bugs) - 1; i >= 0; i-- {
		if bugs[i].Project == Libraries && bugs[i].Share == SharePointer {
			bugs[i].Project = Advisories
			break
		}
	}
	db.Bugs = append(db.Bugs, bugs...)
}

// assignDates gives each bug a deterministic fix date such that exactly
// BugsFixedAfter2016 land after 2016 (Figure 2's headline) and early dates
// go to the longest-lived projects (Servo and the libraries).
func (db *Database) assignDates() {
	pre := 170 - BugsFixedAfter2016 // 25 early bugs
	preAssigned := 0
	// Early bugs: Servo first (its history starts 2012), then libraries.
	earlyBase := time.Date(2013, 1, 15, 0, 0, 0, 0, time.UTC)
	for i := range db.Bugs {
		if preAssigned >= pre {
			break
		}
		p := db.Bugs[i].Project
		if p == Servo || p == Libraries {
			db.Bugs[i].FixedAt = earlyBase.AddDate(0, preAssigned*36/pre, 7)
			preAssigned++
		}
	}
	// Remaining bugs: spread over 2016-02 .. 2019-06.
	lateBase := time.Date(2016, 2, 10, 0, 0, 0, 0, time.UTC)
	lateSpanMonths := 40
	late := 0
	for i := range db.Bugs {
		if !db.Bugs[i].FixedAt.IsZero() {
			continue
		}
		db.Bugs[i].FixedAt = lateBase.AddDate(0, late*lateSpanMonths/BugsFixedAfter2016, 3)
		late++
	}
}

// ByClass returns the bugs of one class.
func (db *Database) ByClass(c BugClass) []Bug {
	var out []Bug
	for _, b := range db.Bugs {
		if b.Class == c {
			out = append(out, b)
		}
	}
	return out
}

// CountWhere counts bugs matching a predicate.
func (db *Database) CountWhere(pred func(Bug) bool) int {
	n := 0
	for _, b := range db.Bugs {
		if pred(b) {
			n++
		}
	}
	return n
}

// Table1Counts regroups the database into Table 1's Mem/Blk/NBlk columns.
func (db *Database) Table1Counts() map[Project][3]int {
	out := map[Project][3]int{}
	for _, b := range db.Bugs {
		row := out[b.Project]
		switch b.Class {
		case MemoryBug:
			row[0]++
		case BlockingBug:
			row[1]++
		case NonBlockingBug:
			row[2]++
		}
		out[b.Project] = row
	}
	return out
}

// Table2Counts regroups memory bugs into the (propagation, effect) matrix
// with interior-unsafe sub-counts.
func (db *Database) Table2Counts() map[MemProp]map[MemEffect][2]int {
	out := map[MemProp]map[MemEffect][2]int{}
	for _, p := range MemProps {
		out[p] = map[MemEffect][2]int{}
	}
	for _, b := range db.ByClass(MemoryBug) {
		cell := out[b.MemProp][b.MemEffect]
		cell[0]++
		if b.EffectInInterior {
			cell[1]++
		}
		out[b.MemProp][b.MemEffect] = cell
	}
	return out
}

// Table3Counts regroups blocking bugs by project and primitive.
func (db *Database) Table3Counts() map[Project]map[SyncPrimitive]int {
	out := map[Project]map[SyncPrimitive]int{}
	for _, b := range db.ByClass(BlockingBug) {
		if out[b.Project] == nil {
			out[b.Project] = map[SyncPrimitive]int{}
		}
		out[b.Project][b.Primitive]++
	}
	return out
}

// Table4Counts regroups non-blocking bugs by project and sharing mode; the
// advisory bug is folded into the libraries row as in the paper.
func (db *Database) Table4Counts() map[Project]map[ShareMode]int {
	out := map[Project]map[ShareMode]int{}
	for _, b := range db.ByClass(NonBlockingBug) {
		p := b.Project
		if p == Advisories {
			p = Libraries
		}
		if out[p] == nil {
			out[p] = map[ShareMode]int{}
		}
		out[p][b.Share]++
	}
	return out
}

// QuarterBucket is one Figure 2 point: bugs fixed per project in one
// 3-month window.
type QuarterBucket struct {
	Start  time.Time
	Counts map[Project]int
}

// Figure2Buckets groups bug fix dates into 3-month buckets per project.
func (db *Database) Figure2Buckets() []QuarterBucket {
	byStart := map[time.Time]map[Project]int{}
	for _, b := range db.Bugs {
		y, m := b.FixedAt.Year(), b.FixedAt.Month()
		qm := time.Month((int(m)-1)/3*3 + 1)
		start := time.Date(y, qm, 1, 0, 0, 0, 0, time.UTC)
		if byStart[start] == nil {
			byStart[start] = map[Project]int{}
		}
		byStart[start][b.Project]++
	}
	var starts []time.Time
	for s := range byStart {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	var out []QuarterBucket
	for _, s := range starts {
		out = append(out, QuarterBucket{Start: s, Counts: byStart[s]})
	}
	return out
}
