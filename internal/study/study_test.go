package study

import (
	"testing"
	"time"
)

func TestDatabaseTotals(t *testing.T) {
	db := Build()
	if len(db.Bugs) != 170 {
		t.Fatalf("total bugs = %d, want 170", len(db.Bugs))
	}
	if n := len(db.ByClass(MemoryBug)); n != 70 {
		t.Errorf("memory bugs = %d, want 70", n)
	}
	if n := len(db.ByClass(BlockingBug)); n != 59 {
		t.Errorf("blocking bugs = %d, want 59", n)
	}
	if n := len(db.ByClass(NonBlockingBug)); n != 41 {
		t.Errorf("non-blocking bugs = %d, want 41", n)
	}
}

func TestTable1Reproduced(t *testing.T) {
	db := Build()
	counts := db.Table1Counts()
	for _, row := range Table1 {
		got := counts[row.Project]
		if got[0] != row.Mem || got[1] != row.Blk || got[2] != row.NBlk {
			t.Errorf("%s: got %v, want [%d %d %d]", row.Project, got, row.Mem, row.Blk, row.NBlk)
		}
	}
	adv := counts[Advisories]
	if adv[0] != AdvisoryMemBugs || adv[2] != AdvisoryNBlkBugs {
		t.Errorf("advisories: got %v, want [21 0 1]", adv)
	}
}

func TestTable2Reproduced(t *testing.T) {
	db := Build()
	counts := db.Table2Counts()
	for _, cell := range Table2 {
		got := counts[cell.Prop][cell.Effect]
		if got[0] != cell.Count || got[1] != cell.Interior {
			t.Errorf("%v/%v: got %d(%d), want %d(%d)",
				cell.Prop, cell.Effect, got[0], got[1], cell.Count, cell.Interior)
		}
	}
	// Row totals from the paper: safe 1, unsafe 23, safe->unsafe 31,
	// unsafe->safe 15.
	rowTotals := map[MemProp]int{PropSafe: 1, PropUnsafe: 23, PropSafeToUnsafe: 31, PropUnsafeToSafe: 15}
	for prop, want := range rowTotals {
		got := 0
		for _, c := range counts[prop] {
			got += c[0]
		}
		if got != want {
			t.Errorf("row %v total = %d, want %d", prop, got, want)
		}
	}
	// Column totals: Buffer 21, Null 12, Uninit 7, Invalid 10, UAF 14,
	// Double free 6.
	colTotals := map[MemEffect]int{
		EffectBuffer: 21, EffectNull: 12, EffectUninit: 7,
		EffectInvalidFree: 10, EffectUAF: 14, EffectDoubleFree: 6,
	}
	for eff, want := range colTotals {
		got := 0
		for _, prop := range MemProps {
			got += counts[prop][eff][0]
		}
		if got != want {
			t.Errorf("column %v total = %d, want %d", eff, got, want)
		}
	}
}

func TestTable3Reproduced(t *testing.T) {
	db := Build()
	counts := db.Table3Counts()
	for _, proj := range Projects {
		for _, prim := range SyncPrimitives {
			want := Table3[proj][prim]
			got := counts[proj][prim]
			if got != want {
				t.Errorf("%s/%s: got %d, want %d", proj, prim, got, want)
			}
		}
	}
	// Column totals: 38, 10, 6, 1, 4.
	wantTotals := map[SyncPrimitive]int{PrimMutex: 38, PrimCondvar: 10, PrimChannel: 6, PrimOnce: 1, PrimOther: 4}
	for prim, want := range wantTotals {
		got := 0
		for _, proj := range Projects {
			got += counts[proj][prim]
		}
		if got != want {
			t.Errorf("%s total = %d, want %d", prim, got, want)
		}
	}
}

func TestTable4Reproduced(t *testing.T) {
	db := Build()
	counts := db.Table4Counts()
	// Column totals from the paper: Global 3, Pointer 12, Sync 3, O.H. 5,
	// Atomic 5, Mutex 10, MSG 3.
	wantTotals := map[ShareMode]int{
		ShareGlobal: 3, SharePointer: 12, ShareSync: 3, ShareOSHw: 5,
		ShareAtomic: 5, ShareMutex: 10, ShareMessage: 3,
	}
	for mode, want := range wantTotals {
		got := 0
		for _, proj := range Projects {
			got += counts[proj][mode]
		}
		if got != want {
			t.Errorf("%s total = %d, want %d", mode, got, want)
		}
	}
	// Per-row spot checks straight from Table 4.
	if counts[Servo][SharePointer] != 7 || counts[Servo][ShareMutex] != 7 {
		t.Errorf("Servo row wrong: %+v", counts[Servo])
	}
	if counts[Tock][ShareOSHw] != 2 {
		t.Errorf("Tock row wrong: %+v", counts[Tock])
	}
}

func TestBlockingCauses(t *testing.T) {
	db := Build()
	dl := db.CountWhere(func(b Bug) bool { return b.Class == BlockingBug && b.BlkCause == CauseDoubleLock })
	if dl != 30 {
		t.Errorf("double-lock bugs = %d, want 30", dl)
	}
	co := db.CountWhere(func(b Bug) bool { return b.Class == BlockingBug && b.BlkCause == CauseConflictingOrder })
	if co != 7 {
		t.Errorf("conflicting-order bugs = %d, want 7", co)
	}
	// All blocking bugs use interior-unsafe sync primitives in safe code:
	// every one belongs to a primitive category.
	if n := len(db.ByClass(BlockingBug)); n != 59 {
		t.Errorf("blocking = %d", n)
	}
}

func TestFixStrategies(t *testing.T) {
	db := Build()
	for fix, want := range MemFixCounts {
		got := db.CountWhere(func(b Bug) bool { return b.Class == MemoryBug && b.MemFix == fix })
		if got != want {
			t.Errorf("mem fix %v = %d, want %d", fix, got, want)
		}
	}
	// 51/59 blocking bugs fixed by adjusting synchronization (§6.1),
	// of which 21 adjust the guard lifetime.
	adj := db.CountWhere(func(b Bug) bool {
		return b.Class == BlockingBug && (b.BlkFix == BlkFixAdjustSync || b.BlkFix == BlkFixGuardLifetime)
	})
	if adj != 51 {
		t.Errorf("sync-adjusting fixes = %d, want 51", adj)
	}
	gl := db.CountWhere(func(b Bug) bool { return b.Class == BlockingBug && b.BlkFix == BlkFixGuardLifetime })
	if gl != 21 {
		t.Errorf("guard-lifetime fixes = %d, want 21", gl)
	}
	for fix, want := range NBlkFixCounts {
		got := db.CountWhere(func(b Bug) bool {
			return b.Class == NonBlockingBug && b.Share != ShareMessage && b.NBlkFix == fix
		})
		if got != want {
			t.Errorf("nblk fix %v = %d, want %d", fix, got, want)
		}
	}
}

func TestNonBlockingAggregates(t *testing.T) {
	db := Build()
	unsync := db.CountWhere(func(b Bug) bool {
		return b.Class == NonBlockingBug && b.Share != ShareMessage && !b.Synchronized
	})
	if unsync != NBlkUnsynchronized {
		t.Errorf("unsynchronized = %d, want %d", unsync, NBlkUnsynchronized)
	}
	safe := db.CountWhere(func(b Bug) bool { return b.Class == NonBlockingBug && b.InSafeCode })
	if safe != NBlkInSafeCode {
		t.Errorf("in safe code = %d, want %d", safe, NBlkInSafeCode)
	}
	im := db.CountWhere(func(b Bug) bool { return b.Class == NonBlockingBug && b.InteriorMut })
	if im != NBlkInteriorMut {
		t.Errorf("interior mutability = %d, want %d", im, NBlkInteriorMut)
	}
	lm := db.CountWhere(func(b Bug) bool { return b.Class == NonBlockingBug && b.LibMisuse })
	if lm != NBlkLibMisuse {
		t.Errorf("lib misuse = %d, want %d", lm, NBlkLibMisuse)
	}
	// 23 share with unsafe code, 15 with safe code (+3 MSG).
	unsafeShare := db.CountWhere(func(b Bug) bool { return b.Class == NonBlockingBug && b.Share.IsUnsafeShare() })
	if unsafeShare != 23 {
		t.Errorf("unsafe sharing = %d, want 23", unsafeShare)
	}
}

func TestFigure2Dates(t *testing.T) {
	db := Build()
	after := db.CountWhere(func(b Bug) bool { return !b.FixedAt.Before(StableSince) })
	if after != BugsFixedAfter2016 {
		t.Errorf("bugs fixed after 2016 = %d, want %d", after, BugsFixedAfter2016)
	}
	buckets := db.Figure2Buckets()
	if len(buckets) < 10 {
		t.Errorf("buckets = %d, want a multi-year series", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		for _, n := range b.Counts {
			total += n
		}
	}
	if total != 170 {
		t.Errorf("bucketed bugs = %d, want 170", total)
	}
}

func TestFigure1Shape(t *testing.T) {
	// Heavy churn before 2016, stability after (the paper's argument for
	// studying post-2016 Rust).
	early := MeanChanges(d(2012, 1), StableSince)
	late := MeanChanges(StableSince, d(2020, 1))
	if early < 4*late {
		t.Errorf("early churn (%f) should dwarf late churn (%f)", early, late)
	}
	// KLOC grows monotonically.
	for i := 1; i < len(ReleaseHistory); i++ {
		if ReleaseHistory[i].KLOC <= ReleaseHistory[i-1].KLOC {
			t.Errorf("KLOC not monotone at %s", ReleaseHistory[i].Version)
		}
		if !ReleaseHistory[i].Date.After(ReleaseHistory[i-1].Date) {
			t.Errorf("dates not monotone at %s", ReleaseHistory[i].Version)
		}
	}
}

func TestAdvisories(t *testing.T) {
	mem, nblk := AdvisoryCounts()
	if mem != AdvisoryMemBugs || nblk != AdvisoryNBlkBugs {
		t.Errorf("advisories = %d mem + %d nblk, want %d + %d", mem, nblk, AdvisoryMemBugs, AdvisoryNBlkBugs)
	}
	if len(AdvisoryList) != 22 {
		t.Errorf("advisory list = %d, want 22", len(AdvisoryList))
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(), Build()
	if len(a.Bugs) != len(b.Bugs) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Bugs {
		if a.Bugs[i] != b.Bugs[i] {
			t.Fatalf("bug %d differs between builds:\n%+v\n%+v", i, a.Bugs[i], b.Bugs[i])
		}
	}
}

func TestMiningPipeline(t *testing.T) {
	commits := []Commit{
		{Servo, "a1", time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC), "Fix use-after-free in style cache"},
		{Servo, "a2", time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC), "Refactor layout code"},
		{Ethereum, "b1", time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC), "Avoid deadlock when sealing blocks"},
		{Ethereum, "b1", time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC), "Avoid deadlock when sealing blocks"}, // dup
		{TiKV, "c1", time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC), "Fix race condition in scheduler"},
	}
	cands, funnel := Mine(commits)
	if funnel.Total != 5 || funnel.Filtered != 3 {
		t.Errorf("funnel = %+v, want total 5 filtered 3", funnel)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].Class != MemoryBug {
		t.Errorf("first candidate class = %v", cands[0].Class)
	}
	if cands[1].Class != BlockingBug {
		t.Errorf("deadlock candidate class = %v", cands[1].Class)
	}
	if cands[2].Class != NonBlockingBug {
		t.Errorf("race candidate class = %v", cands[2].Class)
	}
}
