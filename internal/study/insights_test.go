package study

import (
	"os"
	"strings"
	"testing"
)

func TestInsightsCatalog(t *testing.T) {
	var insights, suggestions int
	for _, in := range Insights {
		switch in.ID[0] {
		case 'I':
			insights++
		case 'S':
			suggestions++
		}
		if in.Text == "" || in.Section == "" {
			t.Errorf("%s: incomplete entry", in.ID)
		}
	}
	// The paper contributes "11 insights and 8 suggestions".
	if insights != 11 {
		t.Errorf("insights = %d, want 11", insights)
	}
	if suggestions != 8 {
		t.Errorf("suggestions = %d, want 8", suggestions)
	}
}

func TestInsightByID(t *testing.T) {
	if in := InsightByID("I6"); in == nil || !strings.Contains(in.Text, "lifetime") {
		t.Errorf("I6 = %+v", in)
	}
	if InsightByID("I99") != nil {
		t.Error("unknown id should be nil")
	}
}

// TestInsightComponentsExist: every component a catalog entry names is a
// real package directory in this repository.
func TestInsightComponentsExist(t *testing.T) {
	for _, in := range Insights {
		if in.Component == "" {
			continue
		}
		path := "../../" + strings.TrimPrefix(in.Component, "internal/")
		path = "../../internal/" + strings.TrimPrefix(in.Component, "internal/")
		if st, err := os.Stat(path); err != nil || !st.IsDir() {
			t.Errorf("%s: component %q does not exist (%v)", in.ID, in.Component, err)
		}
	}
}
