package study

// Advisory is one vulnerability-database entry among the 22 the paper
// collected from CVE and RustSec. The identifiers below are synthetic
// stand-ins with realistic shapes (the paper does not enumerate its 22
// advisory IDs); their *labels* — 21 memory-safety, 1 non-blocking —
// match Table 1's caption and close the 70/100 totals.
type Advisory struct {
	ID     string // "CVE-..." or "RUSTSEC-..."
	Source string // "CVE" or "RustSec"
	Class  BugClass
	Effect MemEffect // for memory-safety advisories
	Crate  string
}

// AdvisoryList is the 22 collected advisories.
var AdvisoryList = []Advisory{
	{"RUSTSEC-2016-0001", "RustSec", MemoryBug, EffectBuffer, "ssl-bindings"},
	{"RUSTSEC-2017-0002", "RustSec", MemoryBug, EffectUAF, "openssl-shim"},
	{"RUSTSEC-2017-0004", "RustSec", MemoryBug, EffectUAF, "base64-codec"},
	{"RUSTSEC-2017-0006", "RustSec", MemoryBug, EffectBuffer, "smallvec-like"},
	{"RUSTSEC-2018-0003", "RustSec", MemoryBug, EffectDoubleFree, "smallvec-like"},
	{"RUSTSEC-2018-0004", "RustSec", MemoryBug, EffectUninit, "serde-bin"},
	{"RUSTSEC-2018-0006", "RustSec", MemoryBug, EffectUAF, "yaml-parse"},
	{"RUSTSEC-2018-0009", "RustSec", MemoryBug, EffectDoubleFree, "arraydeque"},
	{"RUSTSEC-2018-0010", "RustSec", MemoryBug, EffectBuffer, "ring-buffer"},
	{"RUSTSEC-2018-0012", "RustSec", MemoryBug, EffectInvalidFree, "slab-alloc"},
	{"RUSTSEC-2018-0014", "RustSec", MemoryBug, EffectUninit, "img-decode"},
	{"RUSTSEC-2019-0001", "RustSec", MemoryBug, EffectNull, "ffi-wrap"},
	{"RUSTSEC-2019-0003", "RustSec", MemoryBug, EffectBuffer, "proto-buf"},
	{"RUSTSEC-2019-0005", "RustSec", MemoryBug, EffectUninit, "net-packet"},
	{"RUSTSEC-2019-0009", "RustSec", MemoryBug, EffectUAF, "queue-crate"},
	{"RUSTSEC-2019-0012", "RustSec", MemoryBug, EffectDoubleFree, "matrix-math"},
	{"CVE-2017-1000430", "CVE", MemoryBug, EffectBuffer, "base64-codec"},
	{"CVE-2018-1000622", "CVE", MemoryBug, EffectUninit, "rustdoc-helper"},
	{"CVE-2018-1000810", "CVE", MemoryBug, EffectBuffer, "std-str-repeat"},
	{"CVE-2019-1010299", "CVE", MemoryBug, EffectUninit, "rand-core"},
	{"CVE-2019-12083", "CVE", MemoryBug, EffectUAF, "std-error-downcast"},
	{"CVE-2018-20997", "CVE", NonBlockingBug, 0, "openssl-shim"},
}

// AdvisoryCounts tallies the advisory classes; the test oracle against
// Table 1's caption.
func AdvisoryCounts() (mem, nblk int) {
	for _, a := range AdvisoryList {
		switch a.Class {
		case MemoryBug:
			mem++
		case NonBlockingBug:
			nblk++
		}
	}
	return
}
