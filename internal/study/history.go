package study

import "time"

// Release is one Figure 1 data point: a Rust release with the number of
// language/library feature changes it shipped and the compiler tree's
// size. The series is a digitized approximation of the paper's Figure 1
// (exact per-release values are not published); what matters — and what
// the tests pin — is the shape: heavy churn from 2012 through 2015, a
// stable plateau after v1.6.0 (January 2016), and monotonically growing
// code size.
type Release struct {
	Version string
	Date    time.Time
	Changes int // feature changes in this release
	KLOC    int // total source KLOC at this release
}

func d(y int, m time.Month) time.Time { return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC) }

// ReleaseHistory is the Figure 1 series.
var ReleaseHistory = []Release{
	{"0.1", d(2012, 1), 1650, 105},
	{"0.2", d(2012, 3), 1920, 118},
	{"0.3", d(2012, 7), 2450, 134},
	{"0.4", d(2012, 10), 2210, 149},
	{"0.5", d(2012, 12), 1870, 161},
	{"0.6", d(2013, 4), 2380, 178},
	{"0.7", d(2013, 7), 2510, 196},
	{"0.8", d(2013, 9), 2290, 213},
	{"0.9", d(2014, 1), 2120, 232},
	{"0.10", d(2014, 4), 1980, 251},
	{"0.11", d(2014, 7), 1760, 268},
	{"0.12", d(2014, 10), 1540, 287},
	{"1.0-alpha", d(2015, 1), 1310, 305},
	{"1.0", d(2015, 5), 980, 322},
	{"1.2", d(2015, 8), 640, 338},
	{"1.4", d(2015, 10), 480, 352},
	{"1.5", d(2015, 12), 390, 365},
	{"1.6", d(2016, 1), 250, 377},
	{"1.8", d(2016, 4), 210, 392},
	{"1.10", d(2016, 7), 190, 408},
	{"1.12", d(2016, 9), 220, 425},
	{"1.14", d(2016, 12), 180, 441},
	{"1.16", d(2017, 3), 170, 458},
	{"1.18", d(2017, 6), 160, 476},
	{"1.20", d(2017, 8), 190, 494},
	{"1.22", d(2017, 11), 150, 511},
	{"1.24", d(2018, 2), 160, 529},
	{"1.26", d(2018, 5), 210, 548},
	{"1.28", d(2018, 8), 140, 566},
	{"1.30", d(2018, 10), 170, 585},
	{"1.32", d(2019, 1), 130, 603},
	{"1.34", d(2019, 4), 120, 622},
	{"1.36", d(2019, 7), 110, 641},
	{"1.38", d(2019, 9), 100, 659},
	{"1.39", d(2019, 11), 95, 672},
}

// StableSince is the release the paper calls the start of Rust's stable
// period (v1.6.0, January 2016).
var StableSince = d(2016, 1)

// ChangesBefore sums feature changes in releases strictly before t.
func ChangesBefore(t time.Time) int {
	n := 0
	for _, r := range ReleaseHistory {
		if r.Date.Before(t) {
			n += r.Changes
		}
	}
	return n
}

// MeanChanges returns the average feature changes per release within
// [from, to).
func MeanChanges(from, to time.Time) float64 {
	n, sum := 0, 0
	for _, r := range ReleaseHistory {
		if !r.Date.Before(from) && r.Date.Before(to) {
			n++
			sum += r.Changes
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
