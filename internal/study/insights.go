package study

// Insight is one of the paper's numbered insights or suggestions, linked
// to the rustprobe component that operationalizes it (empty when the item
// is advice to the Rust project rather than to a tool).
type Insight struct {
	ID        string // "I1".."I11", "S1".."S8"
	Section   string
	Text      string
	Component string // rustprobe package embodying it
}

// Insights is the paper's full catalog.
var Insights = []Insight{
	{"I1", "4.1", "Most unsafe usages are for good or unavoidable reasons; Rust's checks are sometimes too strict and escape hatches are useful.", "internal/unsafety"},
	{"I2", "4.2", "Interior unsafe is a good way to encapsulate unsafe code.", "internal/unsafety"},
	{"I3", "4.3", "Some safety conditions of unsafe code are hard to check; interior unsafe functions often rely on correct inputs/environments rather than explicit checks.", "internal/unsafety"},
	{"I4", "5.1", "Rust's safety mechanisms are very effective at preventing memory bugs: all memory-safety issues involve unsafe code (though many also involve safe code).", "internal/detect/uaf"},
	{"I5", "5.2", "More than half of memory bugs are fixed by changing or conditionally skipping unsafe code; few remove it entirely — unsafe is often unavoidable.", "internal/study"},
	{"I6", "6.1", "Misunderstanding Rust's lifetime rules is a common cause of blocking bugs (implicit unlock at guard-lifetime end).", "internal/detect/doublelock"},
	{"I7", "6.2", "Data sharing follows recognizable patterns, useful for bug-detection tool design.", "internal/study"},
	{"I8", "6.2", "How data is shared is not tied to how non-blocking bugs manifest: sharing can be unsafe while the bug is in safe code.", "internal/study"},
	{"I9", "6.2", "Misusing Rust's unique libraries (RefCell, poisoned Mutex, Arc, channels) is a major non-blocking-bug cause; the libraries' runtime checks catch these.", "internal/interp"},
	{"I10", "6.2", "API design (mutable vs immutable borrow) determines how much the compiler can check: interior mutability with &self hides races from rustc.", "internal/detect/interiormut"},
	{"I11", "6.2", "Fix strategies match traditional languages', so existing automated fixing techniques should port to Rust.", ""},

	{"S1", "4.1", "Export only the true source of unsafety as an unsafe interface, minimizing unsafe surface.", "internal/unsafety"},
	{"S2", "4.2", "Encapsulate unsafe code behind interior-unsafe functions before exposing unsafe interfaces.", "internal/unsafety"},
	{"S3", "4.3", "If a function's safety depends on its caller, mark it unsafe rather than interior unsafe.", "internal/unsafety"},
	{"S4", "4.3", "Restrict interior mutability, especially functions returning references; distinguish it from truly immutable functions.", "internal/borrowck"},
	{"S5", "5.1", "Memory-bug detectors can skip safe code unrelated to unsafe code, cutting false positives and cost.", "internal/detect/uaf"},
	{"S6", "6.1", "IDEs should highlight the location of Rust's implicit unlock (critical-section boundaries).", "internal/visualize"},
	{"S7", "6.1", "Mutex should gain an explicit unlock API (mem::drop of an unsaved guard is inconvenient).", "internal/visualize"},
	{"S8", "6.2", "Review internal mutual exclusion carefully in interior-mutability functions of Sync types.", "internal/detect/interiormut"},
}

// InsightByID returns the catalog entry or nil.
func InsightByID(id string) *Insight {
	for i := range Insights {
		if Insights[i].ID == id {
			return &Insights[i]
		}
	}
	return nil
}
