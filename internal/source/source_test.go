package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPositions(t *testing.T) {
	f := NewFile("a.rs", "fn main() {\n    let x = 1;\n}\n")
	tests := []struct {
		offset int
		line   int
		col    int
	}{
		{0, 1, 1},
		{3, 1, 4},
		{11, 1, 12},
		{12, 2, 1},
		{16, 2, 5},
		{27, 3, 1},
	}
	for _, tt := range tests {
		p := f.Position(tt.offset)
		if p.Line != tt.line || p.Column != tt.col {
			t.Errorf("Position(%d) = %d:%d, want %d:%d", tt.offset, p.Line, p.Column, tt.line, tt.col)
		}
	}
}

func TestLineText(t *testing.T) {
	f := NewFile("a.rs", "one\ntwo\nthree")
	if got := f.Line(2); got != "two" {
		t.Errorf("Line(2) = %q", got)
	}
	if got := f.Line(3); got != "three" {
		t.Errorf("Line(3) = %q", got)
	}
	if got := f.Line(99); got != "" {
		t.Errorf("Line(99) = %q", got)
	}
	if f.LineCount() != 3 {
		t.Errorf("LineCount = %d", f.LineCount())
	}
}

func TestFileSetMapping(t *testing.T) {
	fset := NewFileSet()
	a := fset.Add("a.rs", "aaaa")
	b := fset.Add("b.rs", "bbbbbb")
	if fset.FileFor(a.Base) != a {
		t.Error("a.Base maps to wrong file")
	}
	if fset.FileFor(b.Base+2) != b {
		t.Error("offset in b maps to wrong file")
	}
	pos := fset.Position(b.Base + 2)
	if pos.File != "b.rs" || pos.Column != 3 {
		t.Errorf("pos = %v", pos)
	}
	if got := fset.SpanText(NewSpan(b.Base, b.Base+3)); got != "bbb" {
		t.Errorf("SpanText = %q", got)
	}
}

func TestSpanAlgebra(t *testing.T) {
	s := NewSpan(10, 20)
	if !s.Contains(10) || s.Contains(20) || !s.Contains(19) {
		t.Error("Contains half-open semantics broken")
	}
	if !s.ContainsSpan(NewSpan(12, 18)) || s.ContainsSpan(NewSpan(5, 15)) {
		t.Error("ContainsSpan broken")
	}
	j := s.Join(NewSpan(15, 30))
	if j.Start != 10 || j.End != 30 {
		t.Errorf("Join = %+v", j)
	}
	// Inverted bounds are normalized.
	inv := NewSpan(9, 3)
	if inv.Start != 3 || inv.End != 9 {
		t.Errorf("NewSpan inverted = %+v", inv)
	}
}

func TestSpanJoinProperties(t *testing.T) {
	// Join is commutative and its result contains both inputs.
	prop := func(a1, a2, b1, b2 uint16) bool {
		a := NewSpan(int(a1%1000)+1, int(a2%1000)+1)
		b := NewSpan(int(b1%1000)+1, int(b2%1000)+1)
		ab, ba := a.Join(b), b.Join(a)
		return ab == ba && ab.ContainsSpan(a) && ab.ContainsSpan(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPositionTotal(t *testing.T) {
	// Position never panics and is monotone in the offset.
	prop := func(content string, off1, off2 uint16) bool {
		f := NewFile("x.rs", content)
		a, b := int(off1), int(off2)
		if a > b {
			a, b = b, a
		}
		pa, pb := f.Position(a), f.Position(b)
		if pa.Line > pb.Line {
			return false
		}
		return pa.Line != pb.Line || pa.Column <= pb.Column
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDiagnostics(t *testing.T) {
	fset := NewFileSet()
	f := fset.Add("a.rs", "let x = ;\n")
	d := NewDiagnostics(fset)
	d.Warningf(NewSpan(f.Base, f.Base+3), "suspicious %s", "thing")
	if d.HasErrors() {
		t.Error("warning counted as error")
	}
	d.Errorf(NewSpan(f.Base+8, f.Base+9), "expected expression")
	if !d.HasErrors() || d.Len() != 2 {
		t.Errorf("HasErrors/Len wrong: %d", d.Len())
	}
	out := d.String()
	if !strings.Contains(out, "a.rs:1:9") || !strings.Contains(out, "expected expression") {
		t.Errorf("render: %q", out)
	}
	d.Notef(NewSpan(f.Base, f.Base+1), "fyi")
	if d.All()[2].Severity != SeverityNote {
		t.Error("note severity lost")
	}
}

func TestSeverityStrings(t *testing.T) {
	if SeverityNote.String() != "note" || SeverityWarning.String() != "warning" || SeverityError.String() != "error" {
		t.Error("severity strings wrong")
	}
}

func TestFileSetMarkRollback(t *testing.T) {
	fset := NewFileSet()
	a := fset.Add("a.rs", "fn a() {}\n")
	mark := fset.Mark()
	size := fset.Size()

	fset.Add("b.rs", "fn b() {}\n")
	fset.Add("c.rs", "fn c() {}\n")
	fset.Rollback(mark)

	if got := len(fset.Files()); got != 1 {
		t.Fatalf("Files() = %d after rollback, want 1", got)
	}
	if fset.Size() != size {
		t.Fatalf("Size() = %d after rollback, want %d", fset.Size(), size)
	}
	// Spans for the surviving file still resolve; a re-Add reuses the
	// reclaimed offset space.
	if pos := fset.Position(a.Base); pos.File != "a.rs" || pos.Line != 1 {
		t.Fatalf("surviving file position = %+v", pos)
	}
	b2 := fset.Add("b2.rs", "fn b2() {}\n")
	if pos := fset.Position(b2.Base); pos.File != "b2.rs" {
		t.Fatalf("re-added file position = %+v", pos)
	}
	// A stale mark (beyond the current set) is ignored.
	stale := Mark{files: 99, next: 12345}
	fset.Rollback(stale)
	if got := len(fset.Files()); got != 2 {
		t.Fatalf("stale rollback mutated the set: %d files", got)
	}
}
