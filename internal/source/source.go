// Package source provides source-file management, byte spans, line/column
// positions, and structured diagnostics shared by every stage of the
// rustprobe pipeline (lexer, parser, lowering, detectors).
package source

import (
	"fmt"
	"sort"
	"strings"
)

// File is a single source file registered with a FileSet. Line offsets are
// computed eagerly so position lookups are O(log lines).
type File struct {
	Name    string
	Content string
	Base    int   // global offset of byte 0 of this file within the FileSet
	lines   []int // byte offset of the start of each line (line 1 at lines[0])
}

// NewFile builds a standalone File with Base 0. Most callers should use
// FileSet.Add instead so spans from different files stay disjoint.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.indexLines()
	return f
}

func (f *File) indexLines() {
	f.lines = f.lines[:0]
	f.lines = append(f.lines, 0)
	for i := 0; i < len(f.Content); i++ {
		if f.Content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
}

// Size returns the length of the file content in bytes.
func (f *File) Size() int { return len(f.Content) }

// Position resolves a local byte offset to a line/column pair (1-based).
func (f *File) Position(offset int) Position {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	line := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > offset }) - 1
	return Position{
		File:   f.Name,
		Line:   line + 1,
		Column: offset - f.lines[line] + 1,
		Offset: offset,
	}
}

// OffsetOf inverts Position: it maps a 1-based line/column pair back to
// the local byte offset, clamped into the file. Callers that persisted a
// resolved position across processes use this to rebuild a span against
// a fresh registration of the same content.
func (f *File) OffsetOf(line, col int) int {
	if len(f.lines) == 0 {
		return 0
	}
	if line < 1 {
		line = 1
	}
	if line > len(f.lines) {
		line = len(f.lines)
	}
	off := f.lines[line-1] + col - 1
	if off < f.lines[line-1] {
		off = f.lines[line-1]
	}
	if off > len(f.Content) {
		off = len(f.Content)
	}
	return off
}

// Line returns the text of the given 1-based line without its newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lines) {
		return ""
	}
	start := f.lines[n-1]
	end := len(f.Content)
	if n < len(f.lines) {
		end = f.lines[n] - 1
	}
	return f.Content[start:end]
}

// LineCount reports the number of lines in the file.
func (f *File) LineCount() int { return len(f.lines) }

// Position is a resolved location within a file. Line and Column are
// 1-based; Offset is the 0-based byte offset within the file.
type Position struct {
	File   string
	Line   int
	Column int
	Offset int
}

func (p Position) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Column)
}

// IsValid reports whether the position refers to an actual location.
func (p Position) IsValid() bool { return p.Line > 0 }

// Span is a half-open byte interval [Start, End) in FileSet-global offsets.
type Span struct {
	Start int
	End   int
}

// NewSpan constructs a span, normalizing inverted bounds.
func NewSpan(start, end int) Span {
	if end < start {
		start, end = end, start
	}
	return Span{Start: start, End: end}
}

// Len returns the number of bytes covered by the span.
func (s Span) Len() int { return s.End - s.Start }

// Contains reports whether the global offset lies within the span.
func (s Span) Contains(offset int) bool { return offset >= s.Start && offset < s.End }

// ContainsSpan reports whether other lies entirely within s.
func (s Span) ContainsSpan(other Span) bool { return other.Start >= s.Start && other.End <= s.End }

// Join returns the smallest span covering both s and other.
func (s Span) Join(other Span) Span {
	if other.Len() == 0 && other.Start == 0 {
		return s
	}
	if s.Len() == 0 && s.Start == 0 {
		return other
	}
	out := s
	if other.Start < out.Start {
		out.Start = other.Start
	}
	if other.End > out.End {
		out.End = other.End
	}
	return out
}

// FileSet maps global offsets back to files, mirroring go/token.FileSet.
type FileSet struct {
	files []*File
	next  int
}

// NewFileSet returns an empty FileSet. Global offset 0 is reserved so that
// the zero Span is recognizably invalid.
func NewFileSet() *FileSet { return &FileSet{next: 1} }

// Add registers content under name and returns the File. Spans produced for
// this file must be offset by File.Base.
func (fs *FileSet) Add(name, content string) *File {
	f := NewFile(name, content)
	f.Base = fs.next
	fs.next += len(content) + 1
	fs.files = append(fs.files, f)
	return f
}

// FileFor returns the file containing the global offset, or nil.
func (fs *FileSet) FileFor(global int) *File {
	i := sort.Search(len(fs.files), func(i int) bool { return fs.files[i].Base > global }) - 1
	if i < 0 || i >= len(fs.files) {
		return nil
	}
	f := fs.files[i]
	if global > f.Base+len(f.Content) {
		return nil
	}
	return f
}

// Files returns the registered files in registration order.
func (fs *FileSet) Files() []*File { return fs.files }

// Size returns the global-offset space consumed so far — the sum of all
// registered content lengths (plus one sentinel byte per file). Long-lived
// owners that re-register edited files use it to decide when the set has
// outgrown the live sources and should be rebuilt.
func (fs *FileSet) Size() int { return fs.next }

// Mark is a registration snapshot taken by FileSet.Mark for Rollback.
type Mark struct {
	files int
	next  int
}

// Mark captures the current registration state. A later Rollback with it
// discards every file Added since — for callers that register files
// speculatively (e.g. an incremental round that may abort on syntax
// errors) and must not leak entries into a long-lived set.
func (fs *FileSet) Mark() Mark { return Mark{files: len(fs.files), next: fs.next} }

// Rollback discards files registered after m was taken. Spans handed out
// for the discarded files dangle afterwards, so only roll back when the
// work that produced them is being discarded wholesale. A mark from a
// different or already-rolled-back state is ignored.
func (fs *FileSet) Rollback(m Mark) {
	if m.files < 0 || m.files > len(fs.files) {
		return
	}
	fs.files = fs.files[:m.files]
	fs.next = m.next
}

// Position resolves a global offset to a Position.
func (fs *FileSet) Position(global int) Position {
	f := fs.FileFor(global)
	if f == nil {
		return Position{}
	}
	return f.Position(global - f.Base)
}

// SpanText returns the source text a span covers, or "" if unresolvable.
func (fs *FileSet) SpanText(sp Span) string {
	f := fs.FileFor(sp.Start)
	if f == nil {
		return ""
	}
	lo, hi := sp.Start-f.Base, sp.End-f.Base
	if lo < 0 || hi > len(f.Content) || lo > hi {
		return ""
	}
	return f.Content[lo:hi]
}

// Severity classifies a diagnostic.
type Severity int

// Severity levels, from informational to fatal.
const (
	SeverityNote Severity = iota
	SeverityWarning
	SeverityError
)

func (s Severity) String() string {
	switch s {
	case SeverityNote:
		return "note"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one message anchored at a span.
type Diagnostic struct {
	Severity Severity
	Span     Span
	Message  string
	Notes    []string
}

// Diagnostics accumulates diagnostics for a compilation.
type Diagnostics struct {
	fset *FileSet
	list []Diagnostic
}

// NewDiagnostics returns an empty diagnostic sink bound to fset.
func NewDiagnostics(fset *FileSet) *Diagnostics {
	return &Diagnostics{fset: fset}
}

// Errorf records an error diagnostic.
func (d *Diagnostics) Errorf(sp Span, format string, args ...any) {
	d.list = append(d.list, Diagnostic{Severity: SeverityError, Span: sp, Message: fmt.Sprintf(format, args...)})
}

// Warningf records a warning diagnostic.
func (d *Diagnostics) Warningf(sp Span, format string, args ...any) {
	d.list = append(d.list, Diagnostic{Severity: SeverityWarning, Span: sp, Message: fmt.Sprintf(format, args...)})
}

// Notef records a note diagnostic.
func (d *Diagnostics) Notef(sp Span, format string, args ...any) {
	d.list = append(d.list, Diagnostic{Severity: SeverityNote, Span: sp, Message: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostic was recorded.
func (d *Diagnostics) HasErrors() bool {
	for _, dg := range d.list {
		if dg.Severity == SeverityError {
			return true
		}
	}
	return false
}

// All returns the recorded diagnostics in order.
func (d *Diagnostics) All() []Diagnostic { return d.list }

// Len returns the number of recorded diagnostics.
func (d *Diagnostics) Len() int { return len(d.list) }

// String renders all diagnostics, one per line, with resolved positions.
func (d *Diagnostics) String() string {
	var b strings.Builder
	for _, dg := range d.list {
		pos := d.fset.Position(dg.Span.Start)
		fmt.Fprintf(&b, "%s: %s: %s\n", pos, dg.Severity, dg.Message)
		for _, n := range dg.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
	}
	return b.String()
}
