package unsafety

import (
	"testing"

	"rustprobe/internal/hir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func scan(t *testing.T, src string) (*Report, *hir.Program) {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	return Scan(prog), prog
}

func TestCountsRegionsFnsTraits(t *testing.T) {
	rep, _ := scan(t, `
unsafe fn direct() { let p = 1 as *mut u8; *p = 0; }
fn interior() { unsafe { let p = 2 as *const u8; let v = *p; } }
unsafe trait Danger {}
struct S { v: i32 }
unsafe impl Danger for S {}
fn plain() { let x = 1; }
`)
	if rep.Fns != 1 {
		t.Errorf("Fns = %d", rep.Fns)
	}
	if rep.Regions != 1 {
		t.Errorf("Regions = %d", rep.Regions)
	}
	// unsafe trait + unsafe impl each count toward the trait metric.
	if rep.Traits != 2 {
		t.Errorf("Traits = %d", rep.Traits)
	}
	if rep.Impls != 1 {
		t.Errorf("Impls = %d", rep.Impls)
	}
	if rep.TotalUsages() != 4 {
		t.Errorf("TotalUsages = %d", rep.TotalUsages())
	}
}

func TestOpClassification(t *testing.T) {
	rep, _ := scan(t, `
static mut G: u32 = 0;
fn touch_static() { unsafe { G += 1; } }
fn raw() { unsafe { let p = 0 as *mut u8; *p = 1; } }
fn ffi() { unsafe { memcpy(1, 2, 3); } }
`)
	ops := rep.CountOps()
	if ops[OpStaticMut] != 1 {
		t.Errorf("static-mut = %d", ops[OpStaticMut])
	}
	if ops[OpRawPointer] < 1 {
		t.Errorf("raw-pointer = %d", ops[OpRawPointer])
	}
	if ops[OpCallUnsafe] != 1 {
		t.Errorf("call-unsafe = %d", ops[OpCallUnsafe])
	}
}

func TestRemovableAndCtorLabel(t *testing.T) {
	rep, _ := scan(t, `
struct Utf8 { bytes: Vec<u8> }
impl Utf8 {
    pub unsafe fn from_utf8_unchecked(bytes: Vec<u8>) -> Utf8 {
        Utf8 { bytes: bytes }
    }
}
pub unsafe fn for_consistency() {
    let total = 1 + 2;
    report(total);
}
`)
	rem := rep.Removable()
	if len(rem) != 2 {
		t.Fatalf("removable = %d: %+v", len(rem), rem)
	}
	var ctor, plain int
	for _, u := range rem {
		if u.CtorLabel {
			ctor++
		} else {
			plain++
		}
	}
	if ctor != 1 || plain != 1 {
		t.Errorf("ctor=%d plain=%d", ctor, plain)
	}
}

func TestInteriorUnsafeAudit(t *testing.T) {
	rep, _ := scan(t, `
struct Buf { data: Vec<u8>, len: usize }
impl Buf {
    fn get_checked(&self, i: usize) -> u8 {
        if i >= self.len { return 0; }
        unsafe { *self.data.get_unchecked(i) }
    }
    fn get_asserted(&self, i: usize) -> u8 {
        assert!(i < self.len);
        unsafe { *self.data.get_unchecked(i) }
    }
    fn get_unchecked_wrapper(&self, i: usize) -> u8 {
        unsafe { *self.data.get_unchecked(i) }
    }
}
`)
	if len(rep.InteriorFns) != 3 {
		t.Fatalf("interior fns = %d", len(rep.InteriorFns))
	}
	unchecked := rep.UncheckedInterior()
	if len(unchecked) != 1 || unchecked[0].Name != "Buf::get_unchecked_wrapper" {
		t.Errorf("unchecked = %+v", unchecked)
	}
}

func TestPurposeClassification(t *testing.T) {
	rep, _ := scan(t, `
fn reuse() { unsafe { libc::open(1); } }
fn perf(v: Vec<u8>, i: usize) -> u8 { unsafe { *v.get_unchecked(i) } }
static mut SHARED: u32 = 0;
fn share() { unsafe { SHARED = 1; } }
`)
	purposes := rep.CountPurposes()
	if purposes[PurposeReuse] != 1 {
		t.Errorf("reuse = %d", purposes[PurposeReuse])
	}
	if purposes[PurposePerf] != 1 {
		t.Errorf("perf = %d", purposes[PurposePerf])
	}
	if purposes[PurposeSharing] != 1 {
		t.Errorf("sharing = %d", purposes[PurposeSharing])
	}
}

func TestUnsafeFnCallsResolvedAcrossCrate(t *testing.T) {
	rep, _ := scan(t, `
unsafe fn low_level() { let p = 0 as *mut u8; *p = 1; }
fn wrapper() {
    unsafe { low_level(); }
}
`)
	found := false
	for _, u := range rep.Usages {
		if u.Kind == "region" && u.Function == "wrapper" {
			for _, op := range u.Ops {
				if op == OpCallUnsafe {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("call to user unsafe fn not classified")
	}
}
