// Package unsafety implements the paper's §4 unsafe-usage study as a
// reusable scanner: it counts unsafe regions, functions, traits and impls
// in parsed crates, classifies what operations each unsafe region performs
// and why it plausibly exists, detects unsafe markers that could be
// removed without compile errors (constructor-labelling), and audits
// interior-unsafe functions for explicit safety checks.
package unsafety

import (
	"sort"
	"strings"

	"rustprobe/internal/ast"
	"rustprobe/internal/hir"
	"rustprobe/internal/source"
)

// OpKind classifies the operations inside an unsafe region (§4.1: the five
// things unsafe code may do).
type OpKind int

// Unsafe operation kinds.
const (
	OpRawPointer  OpKind = iota // dereferencing/manipulating raw pointers
	OpStaticMut                 // accessing mutable statics
	OpCallUnsafe                // calling unsafe functions (incl. FFI)
	OpUnsafeTrait               // implementing an unsafe trait
	OpUnionField                // accessing union fields
	OpNoOp                      // nothing inherently unsafe (removable marker)
)

func (k OpKind) String() string {
	switch k {
	case OpRawPointer:
		return "raw-pointer"
	case OpStaticMut:
		return "static-mut"
	case OpCallUnsafe:
		return "call-unsafe-fn"
	case OpUnsafeTrait:
		return "unsafe-trait"
	case OpUnionField:
		return "union-field"
	default:
		return "no-unsafe-op"
	}
}

// Purpose is the scanner's heuristic classification of why the unsafe
// exists (§4.1's reuse/performance/sharing split).
type Purpose int

// Usage purposes.
const (
	PurposeReuse   Purpose = iota // FFI / existing library reuse
	PurposePerf                   // unchecked access for speed
	PurposeSharing                // cross-thread sharing
	PurposeOther
)

func (p Purpose) String() string {
	switch p {
	case PurposeReuse:
		return "code reuse"
	case PurposePerf:
		return "performance"
	case PurposeSharing:
		return "thread sharing"
	default:
		return "other"
	}
}

// Usage is one unsafe usage site.
type Usage struct {
	File     string
	Span     source.Span
	Kind     string // "region", "fn", "trait", "impl"
	Ops      []OpKind
	Purpose  Purpose
	Function string // enclosing function, if any
	// Removable is true when the region/fn contains no operation that
	// requires unsafe (the §4.1 "no compile error when removed" class).
	Removable bool
	// CtorLabel is true for the constructor-labelling pattern: an unsafe
	// fn whose body is entirely safe and which constructs Self.
	CtorLabel bool
}

// InteriorFn is one interior-unsafe function: externally safe, internally
// containing unsafe regions.
type InteriorFn struct {
	Name          string
	File          string
	Span          source.Span
	ExplicitCheck bool // has a visible precondition check before unsafe code
	UnsafeRegions int
}

// Report is the scan result for a set of crates.
type Report struct {
	Regions int
	Fns     int
	Traits  int
	Impls   int

	Usages      []Usage
	InteriorFns []InteriorFn
}

// TotalUsages counts regions+fns+traits (the paper's headline metric).
func (r *Report) TotalUsages() int { return r.Regions + r.Fns + r.Traits }

// CountOps tallies operation kinds over all usages.
func (r *Report) CountOps() map[OpKind]int {
	out := map[OpKind]int{}
	for _, u := range r.Usages {
		for _, op := range u.Ops {
			out[op]++
		}
	}
	return out
}

// CountPurposes tallies purposes over all usages.
func (r *Report) CountPurposes() map[Purpose]int {
	out := map[Purpose]int{}
	for _, u := range r.Usages {
		out[u.Purpose]++
	}
	return out
}

// Removable returns the usages whose unsafe marker is not required.
func (r *Report) Removable() []Usage {
	var out []Usage
	for _, u := range r.Usages {
		if u.Removable {
			out = append(out, u)
		}
	}
	return out
}

// UncheckedInterior returns interior-unsafe functions with no explicit
// precondition check (§4.3's 58% class).
func (r *Report) UncheckedInterior() []InteriorFn {
	var out []InteriorFn
	for _, f := range r.InteriorFns {
		if !f.ExplicitCheck {
			out = append(out, f)
		}
	}
	return out
}

// Scan analyzes crates (using prog for unsafe-fn resolution) and produces
// a Report.
func Scan(prog *hir.Program) *Report {
	r := &Report{}
	// Unsafe functions known to the program (user-defined), used to
	// classify calls inside unsafe regions.
	unsafeFns := map[string]bool{}
	for name, fd := range prog.Funcs {
		if fd.Unsafety {
			unsafeFns[name] = true
			unsafeFns[fd.Name] = true
		}
	}
	for _, crate := range prog.Crates {
		s := &scanner{report: r, prog: prog, unsafeFns: unsafeFns, file: crate.FileName}
		s.items(crate.Items)
	}
	sort.Slice(r.Usages, func(i, j int) bool { return r.Usages[i].Span.Start < r.Usages[j].Span.Start })
	sort.Slice(r.InteriorFns, func(i, j int) bool { return r.InteriorFns[i].Span.Start < r.InteriorFns[j].Span.Start })
	return r
}

type scanner struct {
	report    *Report
	prog      *hir.Program
	unsafeFns map[string]bool
	file      string
}

func (s *scanner) items(items []ast.Item) {
	for _, it := range items {
		switch it := it.(type) {
		case *ast.FnItem:
			s.fn(it, "")
		case *ast.ImplItem:
			if it.Unsafety {
				s.report.Impls++
				s.report.Traits++ // an unsafe impl is a use of an unsafe trait
				s.report.Usages = append(s.report.Usages, Usage{
					File: s.file, Span: it.Sp, Kind: "impl",
					Ops:     []OpKind{OpUnsafeTrait},
					Purpose: PurposeSharing, // unsafe impl Send/Sync dominates
				})
			}
			selfName := ""
			if pt, ok := it.SelfTy.(*ast.PathType); ok {
				selfName = pt.Name()
			}
			for _, sub := range it.Items {
				if f, ok := sub.(*ast.FnItem); ok {
					s.fn(f, selfName)
				}
			}
		case *ast.TraitItem:
			if it.Unsafety {
				s.report.Traits++
				s.report.Usages = append(s.report.Usages, Usage{
					File: s.file, Span: it.Sp, Kind: "trait",
					Ops: []OpKind{OpUnsafeTrait}, Purpose: PurposeOther,
				})
			}
			for _, sub := range it.Items {
				if f, ok := sub.(*ast.FnItem); ok {
					s.fn(f, it.Name)
				}
			}
		case *ast.ModItem:
			s.items(it.Items)
		}
	}
}

func (s *scanner) fn(f *ast.FnItem, selfTy string) {
	qname := f.Name
	if selfTy != "" {
		qname = selfTy + "::" + f.Name
	}
	if f.Unsafety {
		s.report.Fns++
		ops, perfHint := s.opsIn(f.Body)
		u := Usage{
			File: s.file, Span: f.Sp, Kind: "fn",
			Ops: ops, Function: qname,
			Purpose: purposeOf(ops, f.Name, perfHint),
		}
		if len(ops) == 0 || allNoOp(ops) {
			u.Removable = true
			u.Ops = []OpKind{OpNoOp}
			if isCtorName(f.Name) && returnsSelf(f) {
				u.CtorLabel = true
			}
		}
		s.report.Usages = append(s.report.Usages, u)
	}
	if f.Body == nil {
		return
	}
	// Unsafe regions inside the body.
	regions := unsafeBlocks(f.Body)
	for _, blk := range regions {
		s.report.Regions++
		ops, perfHint := s.opsIn(blk)
		u := Usage{
			File: s.file, Span: blk.Sp, Kind: "region",
			Ops: ops, Function: qname,
			Purpose: purposeOf(ops, f.Name, perfHint),
		}
		if len(ops) == 0 || allNoOp(ops) {
			u.Removable = true
			u.Ops = []OpKind{OpNoOp}
		}
		s.report.Usages = append(s.report.Usages, u)
	}
	// Interior unsafe: a non-unsafe fn containing unsafe regions.
	if !f.Unsafety && len(regions) > 0 {
		s.report.InteriorFns = append(s.report.InteriorFns, InteriorFn{
			Name: qname, File: s.file, Span: f.Sp,
			ExplicitCheck: hasCheckBefore(f.Body, regions[0]),
			UnsafeRegions: len(regions),
		})
	}
}

func allNoOp(ops []OpKind) bool {
	for _, op := range ops {
		if op != OpNoOp {
			return false
		}
	}
	return true
}

// unsafeBlocks collects the outermost unsafe blocks of a body.
func unsafeBlocks(body *ast.BlockExpr) []*ast.BlockExpr {
	var out []*ast.BlockExpr
	if body == nil {
		return nil
	}
	ast.Walk(body, func(n ast.Node) bool {
		if blk, ok := n.(*ast.BlockExpr); ok && blk.Unsafety && blk != body {
			out = append(out, blk)
			return false // outermost only
		}
		return true
	})
	return out
}

// opsIn classifies the unsafe operations within a node; perfHint reports
// whether an unchecked-for-speed operation (get_unchecked and friends) was
// seen, which drives purpose classification.
func (s *scanner) opsIn(n ast.Node) ([]OpKind, bool) {
	if n == nil {
		return nil, false
	}
	perfHint := false
	seen := map[OpKind]bool{}
	ast.Inspect(n, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == ast.UnDeref && s.isRawPtrExpr(n.X) {
				seen[OpRawPointer] = true
			}
		case *ast.CastExpr:
			if _, isPtr := n.Ty.(*ast.RawPtrType); isPtr {
				seen[OpRawPointer] = true
			}
		case *ast.PathExpr:
			if n.IsLocal() {
				if sd, ok := s.prog.Statics[n.Name()]; ok && sd.Mut {
					seen[OpStaticMut] = true
				}
			}
		case *ast.AssignExpr:
			if pe, ok := ast.Unparen(n.L).(*ast.PathExpr); ok && pe.IsLocal() {
				if sd, ok := s.prog.Statics[pe.Name()]; ok && sd.Mut {
					seen[OpStaticMut] = true
				}
			}
		case *ast.CallExpr:
			if pe, ok := ast.Unparen(n.Fn).(*ast.PathExpr); ok {
				name := pe.Name()
				qual := strings.Join(pe.Segments, "::")
				if s.unsafeFns[qual] || s.unsafeFns[name] || knownUnsafeCallee(qual) || knownUnsafeCallee(name) {
					seen[OpCallUnsafe] = true
				}
			}
			// Passing a freshly derived raw pointer to any callee is a
			// raw-pointer operation even when the callee is unknown.
			for _, a := range n.Args {
				if s.isRawPtrExpr(a) {
					seen[OpRawPointer] = true
				}
			}
		case *ast.MethodCallExpr:
			if strings.Contains(n.Name, "unchecked") {
				perfHint = true
				seen[OpRawPointer] = true
			} else if knownUnsafeMethod(n.Name) {
				seen[OpCallUnsafe] = true
			}
		}
	})
	var out []OpKind
	for _, k := range []OpKind{OpRawPointer, OpStaticMut, OpCallUnsafe, OpUnsafeTrait, OpUnionField} {
		if seen[k] {
			out = append(out, k)
		}
	}
	return out, perfHint
}

// isRawPtrExpr heuristically decides whether an expression is raw-pointer
// valued: a cast to a pointer type, a call of as_ptr-style methods, or a
// name conventionally used for pointers.
func (s *scanner) isRawPtrExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CastExpr:
		_, ok := e.Ty.(*ast.RawPtrType)
		return ok
	case *ast.MethodCallExpr:
		return e.Name == "as_ptr" || e.Name == "as_mut_ptr" || e.Name == "offset" || e.Name == "add"
	case *ast.PathExpr:
		if !e.IsLocal() {
			return false
		}
		n := e.Name()
		return n == "p" || n == "ptr" || strings.HasSuffix(n, "_ptr") || strings.HasPrefix(n, "ptr_") ||
			n == "f" || strings.HasSuffix(n, "ptr")
	case *ast.UnaryExpr:
		return e.Op == ast.UnDeref && s.isRawPtrExpr(e.X)
	default:
		return false
	}
}

func knownUnsafeCallee(name string) bool {
	switch name {
	case "alloc", "dealloc", "free", "malloc", "memcpy", "memset", "transmute",
		"ptr::read", "ptr::write", "ptr::copy", "ptr::copy_nonoverlapping",
		"read", "write", "copy", "copy_nonoverlapping", "uninitialized",
		"from_raw", "from_raw_parts", "from_utf8_unchecked":
		return true
	}
	return strings.HasPrefix(name, "libc::") || strings.HasPrefix(name, "sys::")
}

func knownUnsafeMethod(name string) bool {
	switch name {
	case "get_unchecked", "get_unchecked_mut", "offset", "add", "sub",
		"as_ref_unchecked", "slice_unchecked", "read", "write":
		return name != "read" && name != "write" // plain read/write too common
	}
	return false
}

func isCtorName(name string) bool {
	return name == "new" || strings.HasPrefix(name, "new_") ||
		strings.HasPrefix(name, "from_") || name == "default"
}

func returnsSelf(f *ast.FnItem) bool {
	pt, ok := f.Decl.Ret.(*ast.PathType)
	if !ok {
		return false
	}
	n := pt.Name()
	return n == "Self" || n != "" && n[0] >= 'A' && n[0] <= 'Z'
}

// purposeOf maps operation kinds (and naming hints) to the §4.1 purpose
// taxonomy. Unchecked-for-speed hints win over reuse: a get_unchecked call
// is a performance escape even though the callee is an unsafe fn.
func purposeOf(ops []OpKind, fnName string, perfHint bool) Purpose {
	if perfHint || strings.Contains(fnName, "unchecked") || strings.Contains(fnName, "fast") {
		return PurposePerf
	}
	for _, op := range ops {
		switch op {
		case OpCallUnsafe:
			return PurposeReuse
		case OpStaticMut, OpUnsafeTrait:
			return PurposeSharing
		}
	}
	for _, op := range ops {
		if op == OpRawPointer {
			return PurposePerf
		}
	}
	return PurposeOther
}

// hasCheckBefore reports whether the function body contains an if/match/
// assert-style guard lexically before the first unsafe region — the §4.3
// "explicit condition check" criterion.
func hasCheckBefore(body *ast.BlockExpr, region *ast.BlockExpr) bool {
	found := false
	ast.Walk(body, func(n ast.Node) bool {
		if found || n == ast.Node(region) {
			return false
		}
		if n.Span().Start >= region.Sp.Start {
			return false
		}
		switch n := n.(type) {
		case *ast.IfExpr:
			if n.Sp.Start < region.Sp.Start {
				found = true
			}
		case *ast.MacroCallExpr:
			if strings.HasPrefix(n.Name, "assert") || strings.HasPrefix(n.Name, "debug_assert") {
				found = true
			}
		case *ast.MatchExpr:
			if n.Sp.Start < region.Sp.Start && region.Sp.Start < n.Sp.End {
				// The region is inside a match arm: the match is a check.
				found = true
			} else if n.Sp.End <= region.Sp.Start {
				found = true
			}
		}
		return true
	})
	return found
}
