package unsafety

import (
	"fmt"
	"sort"
	"strings"
)

// This file mechanizes the paper's §4.2 unsafe-removal study: given scans
// of a codebase before and after a change, classify each function's
// unsafe-usage delta the way the paper classifies its 130 removal cases —
// did the unsafe code become fully safe, or was it encapsulated behind an
// interior-unsafe function?

// RemovalKind classifies one function's unsafe delta.
type RemovalKind int

// Removal kinds.
const (
	RemovalNone       RemovalKind = iota
	RemovalToSafe                 // all unsafe gone: fully safe now
	RemovalToInterior             // unsafe fn became interior unsafe
	RemovalShrunk                 // fewer unsafe regions remain
	RemovalIntroduced             // unsafe grew (negative removal)
)

func (k RemovalKind) String() string {
	switch k {
	case RemovalToSafe:
		return "fully safe"
	case RemovalToInterior:
		return "interior unsafe"
	case RemovalShrunk:
		return "shrunk"
	case RemovalIntroduced:
		return "introduced"
	default:
		return "unchanged"
	}
}

// Removal is one function's classified delta.
type Removal struct {
	Function string
	Kind     RemovalKind
	Before   int // unsafe regions (+1 if the fn itself was unsafe) before
	After    int
}

// RemovalReport summarizes a before/after comparison.
type RemovalReport struct {
	Removals []Removal
}

// Count tallies removals by kind.
func (r *RemovalReport) Count() map[RemovalKind]int {
	out := map[RemovalKind]int{}
	for _, rm := range r.Removals {
		out[rm.Kind]++
	}
	return out
}

// String renders the report in the §4.2 style.
func (r *RemovalReport) String() string {
	var b strings.Builder
	b.WriteString("unsafe removal classification:\n")
	for _, rm := range r.Removals {
		fmt.Fprintf(&b, "  %-32s %-16s (%d -> %d unsafe)\n", rm.Function, rm.Kind, rm.Before, rm.After)
	}
	counts := r.Count()
	fmt.Fprintf(&b, "fully safe: %d, interior unsafe: %d, shrunk: %d, introduced: %d\n",
		counts[RemovalToSafe], counts[RemovalToInterior], counts[RemovalShrunk], counts[RemovalIntroduced])
	return b.String()
}

// fnProfile captures a function's unsafe footprint in one scan.
type fnProfile struct {
	unsafeFn bool // declared `unsafe fn`
	regions  int  // unsafe regions in the body
	interior bool // appears as interior-unsafe (safe fn with regions)
}

func profile(rep *Report) map[string]fnProfile {
	out := map[string]fnProfile{}
	for _, u := range rep.Usages {
		if u.Function == "" {
			continue
		}
		p := out[u.Function]
		switch u.Kind {
		case "fn":
			p.unsafeFn = true
		case "region":
			p.regions++
		}
		out[u.Function] = p
	}
	for _, f := range rep.InteriorFns {
		p := out[f.Name]
		p.interior = true
		out[f.Name] = p
	}
	return out
}

func (p fnProfile) weight() int {
	w := p.regions
	if p.unsafeFn {
		w++
	}
	return w
}

// CompareScans classifies per-function unsafe deltas between two scans of
// the same (renamed-stable) code.
func CompareScans(before, after *Report) *RemovalReport {
	bp, ap := profile(before), profile(after)
	names := map[string]bool{}
	for n := range bp {
		names[n] = true
	}
	for n := range ap {
		names[n] = true
	}
	var ordered []string
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	rep := &RemovalReport{}
	for _, n := range ordered {
		b, a := bp[n], ap[n]
		if b == a {
			continue
		}
		rm := Removal{Function: n, Before: b.weight(), After: a.weight()}
		switch {
		case b.unsafeFn && !a.unsafeFn && a.interior:
			// The signature lost its unsafe marker but kept internal
			// unsafe: the §4.2 encapsulation class.
			rm.Kind = RemovalToInterior
		case a.weight() > b.weight():
			rm.Kind = RemovalIntroduced
		case a.weight() == 0:
			rm.Kind = RemovalToSafe
		case a.weight() < b.weight():
			rm.Kind = RemovalShrunk
		default:
			continue // same footprint, different shape: not a removal
		}
		rep.Removals = append(rep.Removals, rm)
	}
	return rep
}
