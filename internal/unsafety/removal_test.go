package unsafety

import (
	"testing"
)

// The §4.2 shapes: an unsafe fn becoming fully safe, an unsafe fn becoming
// interior unsafe (the 48+29+10 encapsulation class), and a region shrink.
const beforeSrc = `
pub unsafe fn to_safe(v: Vec<u8>, i: usize) -> u8 {
    *v.get_unchecked(i)
}

pub unsafe fn to_interior(v: Vec<u8>, i: usize) -> u8 {
    *v.get_unchecked(i)
}

pub fn shrinks(v: Vec<u8>, i: usize) -> u8 {
    let a = unsafe { *v.get_unchecked(i) };
    let b = unsafe { *v.get_unchecked(i) };
    a + b
}

pub fn stable(p: *const u8) -> u8 {
    unsafe { *p }
}
`

const afterSrc = `
pub fn to_safe(v: Vec<u8>, i: usize) -> u8 {
    v[i]
}

pub fn to_interior(v: Vec<u8>, i: usize) -> u8 {
    if i >= v.len() {
        return 0;
    }
    unsafe { *v.get_unchecked(i) }
}

pub fn shrinks(v: Vec<u8>, i: usize) -> u8 {
    let a = unsafe { *v.get_unchecked(i) };
    let b = a;
    a + b
}

pub fn stable(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn regression(p: *const u8) -> u8 {
    unsafe { *p }
}
`

func TestCompareScans(t *testing.T) {
	before, _ := scan(t, beforeSrc)
	after, _ := scan(t, afterSrc)
	rep := CompareScans(before, after)
	kinds := map[string]RemovalKind{}
	for _, rm := range rep.Removals {
		kinds[rm.Function] = rm.Kind
	}
	if kinds["to_safe"] != RemovalToSafe {
		t.Errorf("to_safe = %v", kinds["to_safe"])
	}
	if kinds["to_interior"] != RemovalToInterior {
		t.Errorf("to_interior = %v", kinds["to_interior"])
	}
	if kinds["shrinks"] != RemovalShrunk {
		t.Errorf("shrinks = %v", kinds["shrinks"])
	}
	if kinds["regression"] != RemovalIntroduced {
		t.Errorf("regression = %v", kinds["regression"])
	}
	if _, changed := kinds["stable"]; changed {
		t.Error("stable function misreported")
	}
	counts := rep.Count()
	if counts[RemovalToSafe] != 1 || counts[RemovalToInterior] != 1 || counts[RemovalShrunk] != 1 || counts[RemovalIntroduced] != 1 {
		t.Errorf("counts = %v", counts)
	}
	out := rep.String()
	if out == "" {
		t.Error("empty render")
	}
}

func TestCompareScansIdentity(t *testing.T) {
	a, _ := scan(t, beforeSrc)
	b, _ := scan(t, beforeSrc)
	rep := CompareScans(a, b)
	if len(rep.Removals) != 0 {
		t.Errorf("identity comparison reported removals: %+v", rep.Removals)
	}
}
