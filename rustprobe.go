// Package rustprobe is a static-analysis toolkit for a Rust subset,
// reproducing the systems of "Understanding Memory and Thread Safety
// Practices and Issues in Real-World Rust Programs" (PLDI 2020): a
// from-scratch Rust frontend (lexer, parser, resolver), a rustc-style MIR
// with StorageLive/StorageDead and drop elaboration, lifetime/ownership
// dataflow analyses, and the paper's bug detectors — use-after-free and
// double-lock, plus the extensions its §7 recommendations call for
// (conflicting lock orders, invalid/double free, uninitialized reads,
// unsynchronized interior mutability, and §6.2 data races via
// thread-escape plus inter-procedural locksets) — together with the
// paper's
// empirical-study pipeline (bug taxonomy, unsafe-usage scanner, and every
// table and figure as a regenerable report).
//
// Quick start:
//
//	res, err := rustprobe.AnalyzeSource("lib.rs", src)
//	if err != nil { ... }
//	for _, f := range res.Detect() {
//	    fmt.Println(f.Format(res.Fset))
//	}
package rustprobe

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"rustprobe/internal/ast"
	"rustprobe/internal/callgraph"
	"rustprobe/internal/corpus"
	"rustprobe/internal/detect"
	"rustprobe/internal/detect/blocking"
	"rustprobe/internal/detect/dfree"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/dynamic"
	"rustprobe/internal/detect/interiormut"
	"rustprobe/internal/detect/lockorder"
	"rustprobe/internal/detect/race"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/detect/uninit"
	"rustprobe/internal/hir"
	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
	"rustprobe/internal/unsafety"
)

// AnalyzerVersion names the analysis-semantics revision. Bump it
// whenever detector behavior, the MIR lowering, or the serialized result
// shape changes in a way that makes previously persisted results stale:
// the engine folds it (with the detector registry) into the persistent
// store's entry version, so old entries self-invalidate instead of being
// served.
const AnalyzerVersion = "9"

// StateVersion ties persisted incremental-analysis state
// (incrstate.State) to the analyzer + detector set that produced it.
// The CLI's .rustprobe-state.json and the daemon's store-backed session
// snapshots both carry this string; replaying findings across a version
// change would resurrect results the current detectors might not
// produce, so loaders discard mismatching state and run full.
func StateVersion() string {
	return AnalyzerVersion + ":" + strings.Join(DetectorNames(), ",")
}

// SyntaxError reports that submitted sources failed to lex, parse, or
// resolve. Session rounds return it (instead of an untyped error) so
// serving layers can map it to a client-error status with the rendered
// diagnostics attached.
type SyntaxError struct {
	Diags string
}

func (e *SyntaxError) Error() string { return "rustprobe: syntax errors:\n" + e.Diags }

// Finding re-exports the detector finding type.
type Finding = detect.Finding

// Detector re-exports the detector interface.
type Detector = detect.Detector

// Result is a fully analyzed program: parsed crates, the resolved
// registry, lowered MIR bodies, and accumulated diagnostics.
type Result struct {
	Program *hir.Program
	Bodies  map[string]*mir.Body
	Fset    *source.FileSet
	Diags   *source.Diagnostics

	// Precise selects the SafeDrop-style path-sensitive detector variants
	// for Detect/DetectParallel: default candidate findings that the
	// shared dropflow analysis refutes are dropped. Off by default so the
	// paper's §7 results stay reproducible.
	Precise bool

	// graph, when set before the first Context() call, supplies a
	// pre-built call graph (the session's incrementally patched one)
	// instead of building from scratch. It must describe exactly Bodies.
	graph *callgraph.Graph

	ctxOnce sync.Once
	ctx     *detect.Context
}

// AnalyzeSource parses and lowers a single source string.
func AnalyzeSource(filename, src string) (*Result, error) {
	return AnalyzeFiles(map[string]string{filename: src})
}

// AnalyzeFiles parses and lowers a set of named sources. Parse errors are
// reported in the returned error; the partial Result is still returned for
// inspection.
//
// Internally the pipeline is split into a per-file frontend phase
// (parseArtifact: lex + parse + hashing) and a cross-file link phase
// (link: resolve + lower); incremental sessions reuse frontend artifacts
// for unchanged files and re-run only the link work that a change can
// affect.
func AnalyzeFiles(files map[string]string) (*Result, error) {
	fset := source.NewFileSet()
	diags := source.NewDiagnostics(fset)
	res, _, err := analyzeArtifacts(fset, diags, files)
	return res, err
}

// analyzeArtifacts is the full frontend+link pipeline, also returning the
// per-file artifacts so Session can seed its reuse state.
func analyzeArtifacts(fset *source.FileSet, diags *source.Diagnostics, files map[string]string) (*Result, map[string]*fileArtifact, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	arts := make(map[string]*fileArtifact, len(files))
	ordered := make([]*fileArtifact, 0, len(files))
	for _, n := range names {
		a := parseArtifact(fset, diags, n, files[n])
		arts[n] = a
		ordered = append(ordered, a)
	}
	res, err := link(fset, diags, ordered)
	return res, arts, err
}

// fileArtifact is the per-file frontend product: the parsed AST plus the
// hashes incremental reuse decisions key on. interfaceHash digests the
// source with every function body blanked out — it is stable across
// body-only edits — and fnBodyHashes digests each function body in
// declaration order (the order is itself pinned by interfaceHash, so
// index i names the same function across versions when the interface is
// unchanged).
type fileArtifact struct {
	name          string
	file          *source.File
	crate         *ast.Crate
	interfaceHash string
	fnBodyHashes  []string
	fnItems       []*ast.FnItem // declaration order, aligned with fnBodyHashes
}

// parseArtifact runs the per-file frontend: add to the file set, parse,
// and compute the interface/body hash split.
func parseArtifact(fset *source.FileSet, diags *source.Diagnostics, name, src string) *fileArtifact {
	f := fset.Add(name, src)
	a := &fileArtifact{name: name, file: f, crate: parser.ParseFile(f, diags)}
	a.fnItems = collectFnItems(a.crate)
	a.interfaceHash, a.fnBodyHashes = interfaceAndBodyHashes(f, a.fnItems)
	return a
}

// interfaceAndBodyHashes digests a file's interface (the source with
// every function body excised, each replaced by a fixed marker, so the
// digest is invariant under body-only edits of any length) and each
// function body in declaration order. Body spans of distinct functions
// never overlap (closures are not separate FnItems), so a
// sort-and-splice walk suffices.
func interfaceAndBodyHashes(f *source.File, fnItems []*ast.FnItem) (string, []string) {
	bodyHashes := make([]string, len(fnItems))
	type srcRange struct{ lo, hi int }
	var bodies []srcRange
	for i, fn := range fnItems {
		if fn.Body == nil {
			continue
		}
		sp := fn.Body.Span()
		lo, hi := sp.Start-f.Base, sp.End-f.Base
		if lo < 0 || hi > len(f.Content) || lo > hi {
			bodyHashes[i] = fmt.Sprintf("invalid-span-%d", i)
			continue
		}
		bodyHashes[i] = hashBytes([]byte(f.Content[lo:hi]))
		bodies = append(bodies, srcRange{lo, hi})
	}
	sort.Slice(bodies, func(i, j int) bool { return bodies[i].lo < bodies[j].lo })
	var iface []byte
	prev := 0
	for _, r := range bodies {
		if r.lo < prev {
			continue // defensive: overlapping spans from a malformed parse
		}
		iface = append(iface, f.Content[prev:r.lo]...)
		iface = append(iface, 0)
		prev = r.hi
	}
	iface = append(iface, f.Content[prev:]...)
	return hashBytes(iface), bodyHashes
}

// FileInterfaceHashes digests each analyzed file's interface — the
// source with every function body excised — keyed by file name. Two
// rounds with equal interface hashes differ at most in function bodies,
// the precondition for incremental re-analysis.
func (r *Result) FileInterfaceHashes() map[string]string {
	byName := map[string]*source.File{}
	for _, f := range r.Fset.Files() {
		byName[f.Name] = f
	}
	out := make(map[string]string, len(r.Program.Crates))
	for _, crate := range r.Program.Crates {
		f := byName[crate.FileName]
		if f == nil {
			continue
		}
		h, _ := interfaceAndBodyHashes(f, collectFnItems(crate))
		out[crate.FileName] = h
	}
	return out
}

// FuncBodyHashes digests every function's body text, keyed by qualified
// name. A function whose hash is unchanged between two rounds (with
// equal interface hashes) lowers to identical MIR.
func (r *Result) FuncBodyHashes() map[string]string {
	out := make(map[string]string, len(r.Program.Funcs))
	for q, fd := range r.Program.Funcs {
		if fd.Syntax == nil || fd.Syntax.Body == nil {
			continue
		}
		out[q] = hashBytes([]byte(r.Fset.SpanText(fd.Syntax.Body.Span())))
	}
	return out
}

// FuncDeclPositions fingerprints where each function sits in its file:
// file, byte offset, line and column of the declaration start, keyed by
// qualified name. Between two rounds with equal interface hashes, a
// function whose body hash and position fingerprint are both unchanged
// resolves every span inside its body to identical positions — the
// precondition for replaying its cached findings verbatim. The offset
// alone would not be enough: a same-length edit above the function can
// move newlines without moving bytes, shifting its line numbers.
func (r *Result) FuncDeclPositions() map[string]string {
	out := make(map[string]string, len(r.Program.Funcs))
	for q, fd := range r.Program.Funcs {
		if fd.Syntax == nil {
			continue
		}
		pos := r.Fset.Position(fd.Syntax.Span().Start)
		out[q] = fmt.Sprintf("%s:%d:%d:%d", pos.File, pos.Offset, pos.Line, pos.Column)
	}
	return out
}

// collectFnItems gathers every function item (top-level, impl methods,
// trait methods) in declaration order.
func collectFnItems(crate *ast.Crate) []*ast.FnItem {
	var out []*ast.FnItem
	var walk func(items []ast.Item)
	walk = func(items []ast.Item) {
		for _, it := range items {
			switch it := it.(type) {
			case *ast.FnItem:
				out = append(out, it)
			case *ast.ImplItem:
				walk(it.Items)
			case *ast.TraitItem:
				walk(it.Items)
			}
		}
	}
	walk(crate.Items)
	return out
}

// link runs the cross-file phase over frontend artifacts: resolve the
// crate set into a program registry and lower every function to MIR.
func link(fset *source.FileSet, diags *source.Diagnostics, arts []*fileArtifact) (*Result, error) {
	crates := make([]*ast.Crate, len(arts))
	for i, a := range arts {
		crates[i] = a.crate
	}
	prog := resolve.Crates(fset, diags, crates...)
	bodies := lower.Program(prog, diags)
	res := &Result{Program: prog, Bodies: bodies, Fset: fset, Diags: diags}
	if diags.HasErrors() {
		return res, fmt.Errorf("rustprobe: syntax errors:\n%s", diags.String())
	}
	return res, nil
}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// skipDirInWalk reports directories AnalyzeDir's walk must not descend
// into: VCS metadata, cargo build output, and hidden directories — real
// checkouts keep generated and vendored .rs files there, and analyzing
// them both slows the walk and pollutes findings.
func skipDirInWalk(name string) bool {
	return name == "target" || strings.HasPrefix(name, ".")
}

// LoadDir reads every .rs file under dir (recursively) into a map keyed
// by slash-separated path relative to dir, so findings, diagnostics and
// content-hash cache keys for identical trees are identical regardless of
// where the tree lives on the host. The walk skips .git, target/ (cargo
// build output), and other hidden directories.
func LoadDir(dir string) (map[string]string, error) {
	files := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != dir && skipDirInWalk(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".rs") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		files[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("rustprobe: %w", err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("rustprobe: no .rs files under %s", dir)
	}
	return files, nil
}

// AnalyzeDir loads every .rs file under dir (see LoadDir for the walk
// rules) and analyzes them as one crate set.
func AnalyzeDir(dir string) (*Result, error) {
	files, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return AnalyzeFiles(files)
}

// AnalyzeCorpus loads one of the embedded corpus groups
// ("detector-eval", "patterns", "unsafe", "all").
func AnalyzeCorpus(group string) (*Result, error) {
	prog, diags, err := corpus.Load(corpus.Group(group))
	if err != nil {
		return nil, err
	}
	bodies := lower.Program(prog, diags)
	return &Result{Program: prog, Bodies: bodies, Fset: prog.Fset, Diags: diags}, nil
}

// Context returns (building lazily) the shared detector context. The
// context is built exactly once and is safe to hand to concurrent
// detector runs. A session-supplied patched call graph is used when
// present; otherwise the graph is built from scratch.
func (r *Result) Context() *detect.Context {
	r.ctxOnce.Do(func() {
		if r.graph != nil {
			r.ctx = detect.NewContextWithGraph(r.Program, r.Bodies, r.graph)
		} else {
			r.ctx = detect.NewContext(r.Program, r.Bodies)
		}
	})
	return r.ctx
}

// Detectors returns the built-in static detector registry in a stable
// order. The opt-in "dynamic" detector (the bounded Miri-style explorer)
// is not part of the default suite; select it by name in Detect.
func Detectors() []Detector { return detectorRegistry(false) }

// detectorRegistry builds the static suite; precise selects the
// path-sensitive (dropflow-refuting) variants of the memory detectors.
// The lock and concurrency detectors have no precise variant.
func detectorRegistry(precise bool) []Detector {
	return []Detector{
		&uaf.Detector{Precise: precise},
		doublelock.New(),
		lockorder.New(),
		blocking.New(),
		&dfree.Detector{Precise: precise},
		&uninit.Detector{Precise: precise},
		interiormut.New(),
		race.New(),
	}
}

// localDetectors are the passes whose findings are attributed to the
// analyzed root function and depend only on that function, its transitive
// callees, and the (always fully present) resolved program registry.
// Incremental sessions re-run them only over the dirty callgraph closure
// and reuse cached findings for every other root.
func localDetectors(precise bool) []Detector {
	return []Detector{
		&uaf.Detector{Precise: precise},
		doublelock.New(),
		&dfree.Detector{Precise: precise},
		&uninit.Detector{Precise: precise},
	}
}

// globalDetectors pair facts across possibly unrelated functions —
// conflicting lock orders across function pairs, data races across spawn
// sites and statics, interior-mutability conflicts across one type's
// methods — so a change anywhere can flip their findings and they always
// re-run whole-program.
func globalDetectors() []Detector {
	return []Detector{
		lockorder.New(),
		blocking.New(),
		interiormut.New(),
		race.New(),
	}
}

// DetectorNames lists the registry names, including the opt-in dynamic
// explorer.
func DetectorNames() []string {
	var out []string
	for _, d := range Detectors() {
		out = append(out, d.Name())
	}
	return append(out, dynamic.New().Name())
}

// Detect runs the named detectors (the full static suite when none are
// named) and returns the merged, position-sorted findings. The "dynamic"
// detector only runs when named explicitly.
func (r *Result) Detect(names ...string) []Finding {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []Finding
	for _, d := range detectorRegistry(r.Precise) {
		if len(want) > 0 && !want[d.Name()] {
			continue
		}
		out = append(out, d.Run(r.Context())...)
	}
	if want["dynamic"] {
		out = append(out, dynamic.New().Run(r.Context())...)
	}
	detect.SortFindings(out)
	return out
}

// DetectParallel runs the same detector selection as Detect, but with
// each detector pass on its own goroutine over the shared Context.
// The merged, sorted findings are identical to Detect's; the engine
// uses this to overlap independent passes within one analysis job.
func (r *Result) DetectParallel(names ...string) []Finding {
	out, _ := r.DetectParallelTimed(names...)
	return out
}

// DetectParallelTimed is DetectParallel plus a per-detector wall-time
// breakdown (keyed by detector name). A detector panic re-panics on the
// caller's goroutine (matching Detect's behavior); context-aware callers
// that want panics as values use DetectParallelTimedCtx.
func (r *Result) DetectParallelTimed(names ...string) ([]Finding, map[string]time.Duration) {
	out, times, err := r.DetectParallelTimedCtx(context.Background(), names...)
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			panic(fmt.Sprintf("%v\n%s", pe, pe.Stack))
		}
	}
	return out, times
}

// PanicError reports that a detector pass panicked during the parallel
// fan-out. The recovered value and the panicking goroutine's stack are
// preserved so servers can isolate the failure and log it instead of
// losing the process (or a pool worker) to one bad input.
type PanicError struct {
	Detector string
	Value    any
	Stack    []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("rustprobe: detector %s panicked: %v", e.Detector, e.Value)
}

// testDetectors is appended to the fan-out's registry by package tests to
// exercise panic isolation without a real detector that can panic.
var testDetectors []Detector

// DetectParallelTimedCtx is the context-aware detector fan-out: each
// selected detector runs on its own goroutine over the shared Context,
// with a per-detector recover. It returns the merged, sorted findings
// and a per-detector wall-time breakdown.
//
// If ctx is cancelled, detectors not yet launched are skipped and the
// context error is returned once the in-flight passes drain (individual
// passes are not interruptible; cancellation stops the fan-out at
// detector granularity). If any pass panics, a *PanicError for the
// first panicking detector is returned instead of findings. The timing
// breakdown is valid in every case.
func (r *Result) DetectParallelTimedCtx(ctx context.Context, names ...string) ([]Finding, map[string]time.Duration, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	ds := detectorRegistry(r.Precise)
	if want["dynamic"] {
		ds = append(ds, dynamic.New())
	}
	ds = append(ds, testDetectors...)
	rctx := r.Context() // build once, before the fan-out
	results := make([][]Finding, len(ds))
	elapsed := make([]time.Duration, len(ds))
	ran := make([]bool, len(ds))
	var (
		wg         sync.WaitGroup
		panicMu    sync.Mutex
		firstPanic *PanicError
	)
	for i, d := range ds {
		if len(want) > 0 && !want[d.Name()] {
			continue
		}
		if ctx.Err() != nil {
			break // cancelled: skip the rest of the fan-out
		}
		ran[i] = true
		wg.Add(1)
		go func(i int, d Detector) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicMu.Lock()
					if firstPanic == nil {
						firstPanic = &PanicError{Detector: d.Name(), Value: v, Stack: debug.Stack()}
					}
					panicMu.Unlock()
				}
			}()
			t := time.Now()
			results[i] = d.Run(rctx)
			elapsed[i] = time.Since(t)
		}(i, d)
	}
	wg.Wait()
	times := make(map[string]time.Duration, len(ds))
	var out []Finding
	for i, fs := range results {
		out = append(out, fs...)
		if ran[i] {
			times[ds[i].Name()] += elapsed[i]
		}
	}
	if firstPanic != nil {
		return nil, times, firstPanic
	}
	if err := ctx.Err(); err != nil {
		return nil, times, err
	}
	detect.SortFindings(out)
	return out, times, nil
}

// ScanUnsafe runs the §4 unsafe-usage scanner over the parsed crates.
func (r *Result) ScanUnsafe() *unsafety.Report {
	return unsafety.Scan(r.Program)
}

// MIR returns the lowered body of a function by qualified name
// ("free_fn", "Type::method"), or nil.
func (r *Result) MIR(qualified string) *mir.Body {
	return r.Bodies[qualified]
}
