package rustprobe

// Ablation experiments for the design choices DESIGN.md calls out: the
// inter-procedural halves of both detectors, and the dynamic explorer as a
// false-positive oracle. Paper context: the UAF detector's three false
// positives come from its unoptimized inter-procedural analysis (§7.1);
// the double-lock detector's six bugs include inter-procedural ones.

import (
	"strings"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/interp"
)

func evalResult(t testing.TB) *Result {
	res, err := AnalyzeCorpus("detector-eval")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func split(findings []detect.Finding) (tp, fp int) {
	for _, f := range findings {
		if strings.Contains(f.Function, "fp_") || strings.Contains(f.Function, "fixed") {
			fp++
		} else {
			tp++
		}
	}
	return
}

// TestAblationUAFIntraOnly: removing the inter-procedural summaries loses
// the bugs whose dereference sits in a callee (getpwnam, strerror, and the
// sign-style pattern) AND the context-sensitivity false positive — the
// trade-off the paper describes.
func TestAblationUAFIntraOnly(t *testing.T) {
	res := evalResult(t)
	full := uaf.New().Run(res.Context())
	intra := (&uaf.Detector{IntraOnly: true}).Run(res.Context())
	fullTP, fullFP := split(full)
	intraTP, intraFP := split(intra)
	if fullTP != 4 || fullFP != 3 {
		t.Fatalf("full = %d TP / %d FP, want 4/3", fullTP, fullFP)
	}
	if intraTP >= fullTP {
		t.Errorf("intra-only should lose true positives: %d vs %d", intraTP, fullTP)
	}
	if intraFP >= fullFP {
		t.Errorf("intra-only should lose the context-insensitivity FP: %d vs %d", intraFP, fullFP)
	}
}

// TestAblationDoubleLockIntraOnly: the caller-holds/callee-locks bug
// (Engine::enqueue -> queue_len) disappears without summaries; the five
// intra-procedural bugs remain.
func TestAblationDoubleLockIntraOnly(t *testing.T) {
	res := evalResult(t)
	full := doublelock.New().Run(res.Context())
	intra := (&doublelock.Detector{IntraOnly: true}).Run(res.Context())
	if len(full) != 6 {
		t.Fatalf("full = %d, want 6", len(full))
	}
	if len(intra) != 5 {
		t.Fatalf("intra-only = %d, want 5", len(intra))
	}
	for _, f := range intra {
		if strings.Contains(f.Message, "acquires") && strings.Contains(f.Message, "call to") {
			t.Errorf("intra-only run still has an inter-procedural finding: %+v", f)
		}
	}
}

// TestAblationReadReadFlag: enabling FlagReadRead surfaces recursive read
// locks as additional findings.
func TestAblationReadReadFlag(t *testing.T) {
	res, err := AnalyzeSource("rr.rs", `
struct S { v: i32 }
fn f(rw: RwLock<S>) {
    let a = rw.read().unwrap();
    let b = rw.read().unwrap();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	off := doublelock.New().Run(res.Context())
	on := (&doublelock.Detector{FlagReadRead: true}).Run(res.Context())
	if len(off) != 0 {
		t.Errorf("default should not flag read-read: %+v", off)
	}
	if len(on) != 1 {
		t.Errorf("FlagReadRead should flag read-read: %+v", on)
	}
}

// TestDynamicAsFalsePositiveOracle: the dynamic explorer confirms all six
// static double locks as real single-thread deadlocks (the static
// detector's 0-FP claim cross-checked by an independent analysis), and
// clears the context-insensitivity UAF false positive the static detector
// reports.
func TestDynamicAsFalsePositiveOracle(t *testing.T) {
	res := evalResult(t)
	dyn := interp.RunAll(res.Bodies, interp.Config{})
	deadlocks := map[string]bool{}
	uafFns := map[string]bool{}
	for _, r := range dyn {
		for _, e := range r.Errors {
			switch e.Kind {
			case interp.ErrDeadlock:
				deadlocks[r.Function] = true
			case interp.ErrUseAfterFree:
				uafFns[r.Function] = true
			}
		}
	}
	// All six deadlocks confirmed dynamically, including the
	// inter-procedural one (the explorer inlines resolved calls with the
	// caller's held locks translated through the receiver path).
	for _, fn := range []string{"Engine::step", "Engine::reseal", "Engine::try_upgrade", "Engine::update_sealing", "Engine::drain", "Engine::enqueue"} {
		if !deadlocks[fn] {
			t.Errorf("dynamic explorer missed deadlock in %s", fn)
		}
	}
	for fn := range deadlocks {
		if strings.Contains(fn, "fixed") || strings.Contains(fn, "transfer") {
			t.Errorf("dynamic explorer flagged clean function %s", fn)
		}
	}
	// fp_context's dangling pointer is never dereferenced on the executed
	// paths: the dynamic oracle clears it.
	if uafFns["fp_context"] {
		t.Error("dynamic explorer should clear the context-insensitivity FP")
	}
	// fp_flow is cleared too: the dynamic points-to is strong-updating.
	if uafFns["fp_flow"] {
		t.Error("dynamic explorer should clear the flow-insensitivity FP")
	}
}

func BenchmarkAblationUAFFull(b *testing.B) {
	res := evalResult(b)
	for i := 0; i < b.N; i++ {
		uaf.New().Run(res.Context())
	}
}

func BenchmarkAblationUAFIntraOnly(b *testing.B) {
	res := evalResult(b)
	d := &uaf.Detector{IntraOnly: true}
	for i := 0; i < b.N; i++ {
		d.Run(res.Context())
	}
}

func BenchmarkAblationDoubleLockFull(b *testing.B) {
	res := evalResult(b)
	for i := 0; i < b.N; i++ {
		doublelock.New().Run(res.Context())
	}
}

func BenchmarkAblationDoubleLockIntraOnly(b *testing.B) {
	res := evalResult(b)
	d := &doublelock.Detector{IntraOnly: true}
	for i := 0; i < b.N; i++ {
		d.Run(res.Context())
	}
}

func BenchmarkDynamicExplorer(b *testing.B) {
	res := evalResult(b)
	for i := 0; i < b.N; i++ {
		interp.RunAll(res.Bodies, interp.Config{})
	}
}
