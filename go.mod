module rustprobe

go 1.22
